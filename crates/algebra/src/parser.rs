//! Textual syntax for extended relational algebra programs.
//!
//! The paper writes rule actions as algebra programs, e.g. R2's
//! compensating action (Example 4.2):
//!
//! ```text
//! temp := minus(project[#2](beer), project[#0](brewery));
//! insert(brewery, project[#0, null, null](temp))
//! ```
//!
//! Grammar (statements separated by `;`, trailing `;` allowed):
//!
//! ```text
//! stmt    := IDENT ':=' relexpr
//!          | 'insert' '(' IDENT ',' relexpr ')'
//!          | 'delete' '(' IDENT ',' relexpr ')'
//!          | 'alarm' '(' relexpr ')'
//!          | 'abort'
//! relexpr := IDENT                                  -- relation (incl. R@pre/R@ins/R@del)
//!          | 'select'   '[' scalar ']' '(' relexpr ')'
//!          | 'project'  '[' scalar {',' scalar} ']' '(' relexpr ')'
//!          | 'join'     '[' scalar ']' '(' relexpr ',' relexpr ')'
//!          | 'semijoin' '[' scalar ']' '(' relexpr ',' relexpr ')'
//!          | 'antijoin' '[' scalar ']' '(' relexpr ',' relexpr ')'
//!          | 'union' | 'minus' | 'intersect' | 'times' '(' relexpr ',' relexpr ')'
//!          | '{' tuple {',' tuple} '}'              -- literal relation
//!          | '<' scalar {',' scalar} '>'            -- singleton relation
//! scalar  := disjunction of conjunctions of comparisons over terms;
//!            terms: '#N' column refs, '?N' parameter placeholders,
//!            literals, arithmetic, 'cnt(relexpr)',
//!            'sum(relexpr, N)' / 'avg' / 'min' / 'max', 'isnull(scalar)'
//! tuple   := '(' literal {',' literal} ')'
//! ```
//!
//! Parameter placeholders `?0`, `?1`, … may appear wherever a scalar term
//! may; the parameterized single-row insert of a prepared transaction is
//! written `insert(R, row(?0, ?1, …))` (tuple literals inside `{…}` are
//! ground by definition — `row(…)` is the parameterized form).

use tm_relational::{Tuple, Value};

use crate::error::{AlgebraError, Result};
use crate::expr::{AggFunc, ArithOp, CmpOp, ScalarExpr};
use crate::program::{Program, Statement};
use crate::rel_expr::RelExpr;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Col(usize),
    Param(usize),
    Int(i64),
    Double(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
    Plus,
    Minus,
    Star,
    Slash,
    Comma,
    Semi,
    Assign,
}

fn parse_err(offset: usize, message: impl Into<String>) -> AlgebraError {
    AlgebraError::TypeError(format!(
        "parse error at offset {offset}: {}",
        message.into()
    ))
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Tok::LParen, start));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, start));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBracket, start));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, start));
                i += 1;
            }
            '{' => {
                out.push((Tok::LBrace, start));
                i += 1;
            }
            '}' => {
                out.push((Tok::RBrace, start));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, start));
                i += 1;
            }
            ';' => {
                out.push((Tok::Semi, start));
                i += 1;
            }
            '+' => {
                out.push((Tok::Plus, start));
                i += 1;
            }
            '-' => {
                out.push((Tok::Minus, start));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, start));
                i += 1;
            }
            '/' => {
                out.push((Tok::Slash, start));
                i += 1;
            }
            '#' => {
                let mut j = i + 1;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(parse_err(start, "expected column number after `#`"));
                }
                let n: usize = src[i + 1..j]
                    .parse()
                    .map_err(|_| parse_err(start, "bad column number"))?;
                out.push((Tok::Col(n), start));
                i = j;
            }
            '?' => {
                let mut j = i + 1;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(parse_err(start, "expected parameter number after `?`"));
                }
                let n: usize = src[i + 1..j]
                    .parse()
                    .map_err(|_| parse_err(start, "bad parameter number"))?;
                out.push((Tok::Param(n), start));
                i = j;
            }
            ':' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Assign, start));
                    i += 2;
                } else {
                    return Err(parse_err(start, "expected `:=`"));
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Le, start));
                    i += 2;
                } else {
                    out.push((Tok::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, start));
                    i += 2;
                } else {
                    out.push((Tok::Gt, start));
                    i += 1;
                }
            }
            '=' => {
                out.push((Tok::Eq, start));
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, start));
                    i += 2;
                } else {
                    return Err(parse_err(start, "expected `!=`"));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match b.get(j) {
                        Some(&ch) if ch as char == quote => break,
                        Some(&ch) => {
                            s.push(ch as char);
                            j += 1;
                        }
                        None => return Err(parse_err(start, "unterminated string")),
                    }
                }
                out.push((Tok::Str(s), start));
                i = j + 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                    let mut k = j + 1;
                    while k < b.len() && b[k].is_ascii_digit() {
                        k += 1;
                    }
                    let v: f64 = src[i..k]
                        .parse()
                        .map_err(|_| parse_err(start, "bad double"))?;
                    out.push((Tok::Double(v), start));
                    i = k;
                } else {
                    let v: i64 = src[i..j]
                        .parse()
                        .map_err(|_| parse_err(start, "bad integer"))?;
                    out.push((Tok::Int(v), start));
                    i = j;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < b.len()
                    && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'@')
                {
                    j += 1;
                }
                out.push((Tok::Ident(src[i..j].to_owned()), start));
                i = j;
            }
            other => return Err(parse_err(start, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    len: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|t| t.1).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(parse_err(self.offset(), format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(parse_err(self.offset(), format!("expected {what}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let name = self.ident("statement keyword or temporary name")?;
        match name.as_str() {
            "abort" => Ok(Statement::Abort),
            "alarm" => {
                self.expect(&Tok::LParen, "`(`")?;
                let e = self.relexpr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Statement::Alarm(e))
            }
            "insert" | "delete" => {
                self.expect(&Tok::LParen, "`(`")?;
                let rel = self.ident("relation name")?;
                self.expect(&Tok::Comma, "`,`")?;
                let e = self.relexpr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(if name == "insert" {
                    Statement::Insert {
                        relation: rel,
                        source: e,
                    }
                } else {
                    Statement::Delete {
                        relation: rel,
                        source: e,
                    }
                })
            }
            _ => {
                self.expect(&Tok::Assign, "`:=` after temporary name")?;
                let e = self.relexpr()?;
                Ok(Statement::Assign {
                    target: name,
                    expr: e,
                })
            }
        }
    }

    fn relexpr(&mut self) -> Result<RelExpr> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                // Parenthesized infix set operation, `(left OP right)` —
                // the `Display` rendering of union/minus/intersect/times.
                // Accepting it makes rendered expressions parse back,
                // which the durability log's textual records rely on.
                self.pos += 1;
                let l = self.relexpr()?;
                let op = match self.bump() {
                    Some(Tok::Ident(op))
                        if matches!(op.as_str(), "union" | "minus" | "intersect" | "times") =>
                    {
                        op
                    }
                    _ => {
                        return Err(parse_err(
                            self.offset(),
                            "expected `union`, `minus`, `intersect` or `times`",
                        ))
                    }
                };
                let r = self.relexpr()?;
                self.expect(&Tok::RParen, "`)` closing set operation")?;
                Ok(match op.as_str() {
                    "union" => l.union(r),
                    "minus" => l.difference(r),
                    "intersect" => l.intersect(r),
                    _ => l.product(r),
                })
            }
            Some(Tok::LBrace) => {
                self.pos += 1;
                let mut tuples = Vec::new();
                loop {
                    tuples.push(self.tuple_literal()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RBrace, "`}`")?;
                Ok(RelExpr::Literal(tuples))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "row" => {
                        self.expect(&Tok::LParen, "`(` after row")?;
                        let mut exprs = vec![self.scalar()?];
                        while self.eat(&Tok::Comma) {
                            exprs.push(self.scalar()?);
                        }
                        self.expect(&Tok::RParen, "`)` closing row")?;
                        Ok(RelExpr::Singleton(exprs))
                    }
                    "select" | "project" | "join" | "semijoin" | "antijoin" => {
                        self.expect(&Tok::LBracket, "`[`")?;
                        let mut exprs = vec![self.scalar()?];
                        while self.eat(&Tok::Comma) {
                            exprs.push(self.scalar()?);
                        }
                        self.expect(&Tok::RBracket, "`]`")?;
                        self.expect(&Tok::LParen, "`(`")?;
                        let first = self.relexpr()?;
                        let result = match name.as_str() {
                            "select" => {
                                if exprs.len() != 1 {
                                    return Err(parse_err(
                                        self.offset(),
                                        "select takes exactly one predicate",
                                    ));
                                }
                                RelExpr::Select(Box::new(first), exprs.pop().expect("len 1"))
                            }
                            "project" => RelExpr::Project(Box::new(first), exprs),
                            _ => {
                                self.expect(&Tok::Comma, "`,` between join inputs")?;
                                let second = self.relexpr()?;
                                if exprs.len() != 1 {
                                    return Err(parse_err(
                                        self.offset(),
                                        "joins take exactly one predicate",
                                    ));
                                }
                                let pred = exprs.pop().expect("len 1");
                                match name.as_str() {
                                    "join" => first.join(second, pred),
                                    "semijoin" => first.semi_join(second, pred),
                                    _ => first.anti_join(second, pred),
                                }
                            }
                        };
                        self.expect(&Tok::RParen, "`)`")?;
                        Ok(result)
                    }
                    "union" | "minus" | "intersect" | "times" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let l = self.relexpr()?;
                        self.expect(&Tok::Comma, "`,`")?;
                        let r = self.relexpr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        Ok(match name.as_str() {
                            "union" => l.union(r),
                            "minus" => l.difference(r),
                            "intersect" => l.intersect(r),
                            _ => l.product(r),
                        })
                    }
                    _ => Ok(RelExpr::Rel(name)),
                }
            }
            _ => Err(parse_err(self.offset(), "expected relational expression")),
        }
    }

    fn tuple_literal(&mut self) -> Result<Tuple> {
        self.expect(&Tok::LParen, "`(` opening tuple")?;
        let mut values = vec![self.value_literal()?];
        while self.eat(&Tok::Comma) {
            values.push(self.value_literal()?);
        }
        self.expect(&Tok::RParen, "`)` closing tuple")?;
        Ok(Tuple::from_values(values))
    }

    fn value_literal(&mut self) -> Result<Value> {
        let negative = self.eat(&Tok::Minus);
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Value::Int(if negative { -v } else { v })),
            Some(Tok::Double(v)) => Ok(Value::double(if negative { -v } else { v })),
            Some(Tok::Str(s)) if !negative => Ok(Value::Str(s)),
            Some(Tok::Ident(k)) if !negative => match k.as_str() {
                "null" => Ok(Value::Null),
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => Err(parse_err(
                    self.offset(),
                    format!("unexpected `{k}` in tuple"),
                )),
            },
            _ => Err(parse_err(self.offset(), "expected literal value")),
        }
    }

    // scalar := or_expr
    fn scalar(&mut self) -> Result<ScalarExpr> {
        let mut e = self.scalar_and()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "or") {
            self.pos += 1;
            let r = self.scalar_and()?;
            e = ScalarExpr::or(e, r);
        }
        Ok(e)
    }

    fn scalar_and(&mut self) -> Result<ScalarExpr> {
        let mut e = self.scalar_not()?;
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "and") {
            self.pos += 1;
            let r = self.scalar_not()?;
            e = ScalarExpr::and(e, r);
        }
        Ok(e)
    }

    fn scalar_not(&mut self) -> Result<ScalarExpr> {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "not") {
            self.pos += 1;
            return Ok(ScalarExpr::not(self.scalar_not()?));
        }
        self.scalar_cmp()
    }

    fn scalar_cmp(&mut self) -> Result<ScalarExpr> {
        let l = self.scalar_term()?;
        let op = match self.peek() {
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let r = self.scalar_term()?;
                Ok(ScalarExpr::cmp(op, l, r))
            }
            None => Ok(l),
        }
    }

    fn scalar_term(&mut self) -> Result<ScalarExpr> {
        let mut e = self.scalar_factor()?;
        loop {
            if self.eat(&Tok::Plus) {
                let r = self.scalar_factor()?;
                e = ScalarExpr::arith(ArithOp::Add, e, r);
            } else if self.eat(&Tok::Minus) {
                let r = self.scalar_factor()?;
                e = ScalarExpr::arith(ArithOp::Sub, e, r);
            } else {
                return Ok(e);
            }
        }
    }

    fn scalar_factor(&mut self) -> Result<ScalarExpr> {
        let mut e = self.scalar_primary()?;
        loop {
            if self.eat(&Tok::Star) {
                let r = self.scalar_primary()?;
                e = ScalarExpr::arith(ArithOp::Mul, e, r);
            } else if self.eat(&Tok::Slash) {
                let r = self.scalar_primary()?;
                e = ScalarExpr::arith(ArithOp::Div, e, r);
            } else {
                return Ok(e);
            }
        }
    }

    fn scalar_primary(&mut self) -> Result<ScalarExpr> {
        match self.peek().cloned() {
            Some(Tok::Col(n)) => {
                self.pos += 1;
                Ok(ScalarExpr::Col(n))
            }
            Some(Tok::Param(n)) => {
                self.pos += 1;
                Ok(ScalarExpr::Param(n))
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(ScalarExpr::int(v))
            }
            Some(Tok::Double(v)) => {
                self.pos += 1;
                Ok(ScalarExpr::double(v))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(ScalarExpr::str(s))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                let e = self.scalar_primary()?;
                Ok(match e {
                    ScalarExpr::Const(Value::Int(v)) => ScalarExpr::int(-v),
                    ScalarExpr::Const(Value::Double(v)) => ScalarExpr::double(-v),
                    other => ScalarExpr::arith(ArithOp::Sub, ScalarExpr::int(0), other),
                })
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.scalar()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                // Aggregate keywords are case-insensitive: the paper writes
                // `CNT`, rule actions commonly use lowercase.
                match name.to_ascii_lowercase().as_str() {
                    "null" => Ok(ScalarExpr::Const(Value::Null)),
                    "true" => Ok(ScalarExpr::true_()),
                    "false" => Ok(ScalarExpr::false_()),
                    "isnull" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let e = self.scalar()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        Ok(ScalarExpr::IsNull(Box::new(e)))
                    }
                    "cnt" => {
                        self.expect(&Tok::LParen, "`(`")?;
                        let e = self.relexpr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        Ok(ScalarExpr::Cnt(Box::new(e)))
                    }
                    "sum" | "avg" | "min" | "max" => {
                        let func = match name.to_ascii_lowercase().as_str() {
                            "sum" => AggFunc::Sum,
                            "avg" => AggFunc::Avg,
                            "min" => AggFunc::Min,
                            _ => AggFunc::Max,
                        };
                        self.expect(&Tok::LParen, "`(`")?;
                        let e = self.relexpr()?;
                        self.expect(&Tok::Comma, "`,`")?;
                        let col = match self.bump() {
                            Some(Tok::Int(i)) if i >= 0 => i as usize,
                            _ => {
                                return Err(parse_err(
                                    self.offset(),
                                    "expected 0-based column index",
                                ))
                            }
                        };
                        self.expect(&Tok::RParen, "`)`")?;
                        Ok(ScalarExpr::Agg(func, Box::new(e), col))
                    }
                    other => Err(parse_err(
                        self.offset(),
                        format!("unexpected identifier `{other}` in scalar expression"),
                    )),
                }
            }
            _ => Err(parse_err(self.offset(), "expected scalar expression")),
        }
    }
}

/// Parse a program: statements separated by `;` (trailing `;` allowed).
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = P {
        toks,
        pos: 0,
        len: src.len(),
    };
    let mut stmts = Vec::new();
    loop {
        // Allow trailing separators / empty programs.
        while p.eat(&Tok::Semi) {}
        if p.peek().is_none() {
            break;
        }
        stmts.push(p.statement()?);
        if p.peek().is_some() {
            p.expect(&Tok::Semi, "`;` between statements")?;
        }
    }
    Ok(Program::new(stmts))
}

/// Parse a single relational expression.
pub fn parse_relexpr(src: &str) -> Result<RelExpr> {
    let toks = lex(src)?;
    let mut p = P {
        toks,
        pos: 0,
        len: src.len(),
    };
    let e = p.relexpr()?;
    if p.peek().is_some() {
        return Err(parse_err(p.offset(), "trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_r2_action() {
        let p = parse_program(
            "temp := minus(project[#2](beer), project[#0](brewery));\
             insert(brewery, project[#0, null, null](temp))",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(p.statements()[0], Statement::Assign { .. }));
        assert!(matches!(p.statements()[1], Statement::Insert { .. }));
    }

    #[test]
    fn parses_abort_and_alarm() {
        let p = parse_program("alarm(select[#3 < 0](beer)); abort;").unwrap();
        assert_eq!(p.len(), 2);
        assert!(matches!(p.statements()[0], Statement::Alarm(_)));
        assert!(matches!(p.statements()[1], Statement::Abort));
    }

    #[test]
    fn parses_literals_and_singletons() {
        let e = parse_relexpr("{(1, 'x'), (2, 'y')}").unwrap();
        assert!(matches!(e, RelExpr::Literal(ref t) if t.len() == 2));
        let e = parse_relexpr("row(cnt(beer), 5)").unwrap();
        assert!(matches!(e, RelExpr::Singleton(ref v) if v.len() == 2));
    }

    #[test]
    fn parses_joins() {
        let e = parse_relexpr("antijoin[#2 = #4](beer, brewery)").unwrap();
        assert!(matches!(e, RelExpr::AntiJoin(..)));
        let e = parse_relexpr("semijoin[#0 = #1](r, s)").unwrap();
        assert!(matches!(e, RelExpr::SemiJoin(..)));
        let e = parse_relexpr("join[#0 = #1 and #0 > 2](r, s)").unwrap();
        assert!(matches!(e, RelExpr::Join(..)));
    }

    #[test]
    fn parses_set_ops_and_nesting() {
        let e = parse_relexpr("union(minus(a, b), intersect(c, times(d, e)))").unwrap();
        assert_eq!(e.referenced_relations(), vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn parses_aggregate_scalars() {
        let e = parse_relexpr("select[sum(r, 1) >= 10 or avg(r, 0) < 2.5](s)").unwrap();
        assert!(matches!(e, RelExpr::Select(..)));
    }

    #[test]
    fn parses_aux_names() {
        let e = parse_relexpr("minus(beer@ins, beer@del)").unwrap();
        assert_eq!(e.referenced_relations(), vec!["beer@ins", "beer@del"]);
    }

    #[test]
    fn parses_parameter_placeholders() {
        let p = parse_program("insert(account, row(?0, ?1))").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.param_count(), 2);
        match &p.statements()[0] {
            Statement::Insert { source, .. } => {
                assert_eq!(
                    source,
                    &RelExpr::Singleton(vec![ScalarExpr::Param(0), ScalarExpr::Param(1)])
                );
            }
            other => panic!("expected insert, got {other:?}"),
        }
        // Placeholders work anywhere a scalar term does.
        let e = parse_relexpr("select[#1 < ?0 and #0 = ?1](r)").unwrap();
        assert_eq!(e.max_param(), Some(1));
        // A bare `?` is rejected.
        assert!(parse_relexpr("select[#0 = ?](r)").is_err());
    }

    #[test]
    fn round_trips_display() {
        // Display forms of parsed expressions re-parse to the same AST.
        for src in [
            "select[(#3 < 0)](beer)",
            "antijoin[(#2 = #4)](beer, brewery)",
            "project[#0, #1](join[(#0 = #2)](r, s))",
            "row(CNT(r), 1)",
            "row(?0, ?1)",
            "select[(#0 = ?2)](r)",
        ] {
            let e = parse_relexpr(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse_relexpr(&printed);
            assert_eq!(reparsed.unwrap(), e, "round trip failed for {src}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("insert(beer)").is_err());
        assert!(parse_program("select[#0](r)").is_err()); // bare expr is not a statement
        assert!(parse_relexpr("select[#0 <](r)").is_err());
        assert!(parse_relexpr("r extra").is_err());
        assert!(parse_program("x := {(1,) }").is_err());
    }

    #[test]
    fn empty_program_is_pe() {
        assert!(parse_program("").unwrap().is_empty());
        assert!(parse_program(" ; ; ").unwrap().is_empty());
    }

    #[test]
    fn negative_values_in_tuples() {
        let e = parse_relexpr("{(-1, -2.5)}").unwrap();
        match e {
            RelExpr::Literal(ts) => {
                assert_eq!(ts[0], Tuple::of((-1, -2.5_f64)));
            }
            other => panic!("expected literal, got {other:?}"),
        }
    }
}
