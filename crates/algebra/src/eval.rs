//! Evaluation of scalar and relational expressions.
//!
//! Expressions are evaluated against an [`EvalContext`], which resolves
//! relation names to relation states. During transaction execution the
//! context is a [`crate::exec::TxContext`] (base relations from the working
//! state, temporaries, auxiliary relations); tests may use a plain
//! [`tm_relational::Database`] directly.

use std::cmp::Ordering;
use std::sync::Arc;

use tm_relational::util::{fx_map_with_capacity, FxHashMap};
use tm_relational::{Attribute, Database, Relation, RelationSchema, Tuple, Value, ValueType};

use crate::error::{AlgebraError, Result};
use crate::expr::{AggFunc, ArithOp, ScalarExpr};
use crate::keys::{extract_equi_keys, hash_key_values, key_values_match, JoinKeys};
use crate::rel_expr::RelExpr;

/// How join-shaped operators (`Join`, `SemiJoin`, `AntiJoin`) execute.
///
/// [`JoinStrategy::Hash`] — the default — analyses the join predicate with
/// [`crate::keys::extract_equi_keys`]; when equality key pairs exist it
/// builds a hash table on the smaller input and probes with the other,
/// evaluating only the residual predicate per candidate (`O(|L| + |R| +
/// matches)`). Predicates without extractable keys fall back to nested
/// loops, as does [`JoinStrategy::NestedLoop`] unconditionally (kept as
/// the obviously-correct baseline for property tests and benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Hash-based execution where an equi-join key exists (default).
    #[default]
    Hash,
    /// Always use the O(|L|·|R|) nested-loop baseline.
    NestedLoop,
}

/// Read access to relation schemas by name (used at translation and
/// validation time, before any data exists).
pub trait SchemaView {
    /// The schema of relation `name`; auxiliary names (`R@pre`, …) resolve
    /// to their base relation's attribute list.
    fn schema_of(&self, name: &str) -> Result<Arc<RelationSchema>>;
}

/// Read access to relation *states* by name — what expression evaluation
/// needs.
pub trait EvalContext: SchemaView {
    /// The current state of relation `name`.
    fn relation_state(&self, name: &str) -> Result<&Relation>;

    /// The value bound to parameter placeholder `?i`, if any. The default
    /// is an unbound context: evaluating [`ScalarExpr::Param`] against it
    /// raises [`AlgebraError::UnboundParam`] — a transaction template
    /// cannot execute without a binding. The transaction executor
    /// overrides this with the binding it was given.
    fn param(&self, _i: usize) -> Option<&Value> {
        None
    }
}

impl SchemaView for Database {
    fn schema_of(&self, name: &str) -> Result<Arc<RelationSchema>> {
        Ok(self.relation(name)?.schema().clone())
    }
}

impl EvalContext for Database {
    fn relation_state(&self, name: &str) -> Result<&Relation> {
        Ok(self.relation(name)?)
    }
}

/// Evaluate a scalar expression against an input tuple (relation
/// subexpressions inside aggregates use the default [`JoinStrategy::Hash`]).
pub fn eval_scalar(expr: &ScalarExpr, tuple: &Tuple, ctx: &impl EvalContext) -> Result<Value> {
    eval_scalar_with(expr, tuple, ctx, JoinStrategy::Hash)
}

/// Evaluate a scalar expression with an explicit [`JoinStrategy`] for the
/// relation subexpressions of aggregate terms — so a `NestedLoop`
/// evaluation is nested-loop *all the way down*, including `CNT(R ⋈ S)`
/// style predicates.
pub fn eval_scalar_with(
    expr: &ScalarExpr,
    tuple: &Tuple,
    ctx: &impl EvalContext,
    strategy: JoinStrategy,
) -> Result<Value> {
    match expr {
        ScalarExpr::Const(v) => Ok(v.clone()),
        ScalarExpr::Param(i) => ctx.param(*i).cloned().ok_or(AlgebraError::UnboundParam(*i)),
        ScalarExpr::Col(i) => tuple
            .get(*i)
            .cloned()
            .ok_or(AlgebraError::ColumnOutOfRange {
                offset: *i,
                arity: tuple.arity(),
            }),
        ScalarExpr::Arith(op, l, r) => {
            let lv = eval_scalar_with(l, tuple, ctx, strategy)?;
            let rv = eval_scalar_with(r, tuple, ctx, strategy)?;
            eval_arith(*op, &lv, &rv)
        }
        ScalarExpr::Cmp(op, l, r) => {
            let lv = eval_scalar_with(l, tuple, ctx, strategy)?;
            let rv = eval_scalar_with(r, tuple, ctx, strategy)?;
            Ok(Value::Bool(op.test(lv.compare(&rv))))
        }
        ScalarExpr::And(l, r) => {
            // Short-circuit: the right operand is skipped when the left is
            // false, which also skips its runtime errors (two-valued logic).
            if as_bool(&eval_scalar_with(l, tuple, ctx, strategy)?, l)? {
                Ok(Value::Bool(as_bool(
                    &eval_scalar_with(r, tuple, ctx, strategy)?,
                    r,
                )?))
            } else {
                Ok(Value::Bool(false))
            }
        }
        ScalarExpr::Or(l, r) => {
            if as_bool(&eval_scalar_with(l, tuple, ctx, strategy)?, l)? {
                Ok(Value::Bool(true))
            } else {
                Ok(Value::Bool(as_bool(
                    &eval_scalar_with(r, tuple, ctx, strategy)?,
                    r,
                )?))
            }
        }
        ScalarExpr::Not(e) => Ok(Value::Bool(!as_bool(
            &eval_scalar_with(e, tuple, ctx, strategy)?,
            e,
        )?)),
        ScalarExpr::IsNull(e) => Ok(Value::Bool(
            eval_scalar_with(e, tuple, ctx, strategy)?.is_null(),
        )),
        ScalarExpr::Agg(func, rel, col) => {
            let input = evaluate_with(rel, ctx, strategy)?;
            eval_aggregate(*func, &input, *col)
        }
        ScalarExpr::Cnt(rel) => {
            let input = evaluate_with(rel, ctx, strategy)?;
            Ok(Value::Int(input.len() as i64))
        }
    }
}

/// [`ScalarExpr::infer_type`] made binding-aware: a placeholder's type is
/// that of its bound value (statically it is unknowable and defaults to
/// `Int`, which would mistype derived schemas under a binding — e.g.
/// `project[?0]` of a string parameter must yield a `Str` column, exactly
/// as the substituted-constant form would). Only `Param` and the `Arith`
/// spine above it need the context; every other node's type is
/// binding-independent.
fn infer_type_bound(e: &ScalarExpr, cols: &[ValueType], ctx: &impl EvalContext) -> ValueType {
    match e {
        ScalarExpr::Param(i) => ctx
            .param(*i)
            .and_then(Value::value_type)
            .unwrap_or(ValueType::Int),
        ScalarExpr::Arith(_, l, r) => {
            if infer_type_bound(l, cols, ctx) == ValueType::Double
                || infer_type_bound(r, cols, ctx) == ValueType::Double
            {
                ValueType::Double
            } else {
                ValueType::Int
            }
        }
        _ => e.infer_type(cols),
    }
}

fn as_bool(v: &Value, expr: &ScalarExpr) -> Result<bool> {
    v.as_bool()
        .ok_or_else(|| AlgebraError::NotABoolean(expr.to_string()))
}

pub(crate) fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {
                if *b == 0 {
                    Err(AlgebraError::DivisionByZero)
                } else {
                    Ok(Value::Int(a.wrapping_div(*b)))
                }
            }
        },
        _ => {
            let a = l
                .as_double()
                .ok_or_else(|| AlgebraError::TypeError(format!("non-numeric operand {l}")))?;
            let b = r
                .as_double()
                .ok_or_else(|| AlgebraError::TypeError(format!("non-numeric operand {r}")))?;
            let v = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(AlgebraError::DivisionByZero);
                    }
                    a / b
                }
            };
            Ok(Value::double(v))
        }
    }
}

/// Evaluate an aggregate over column `col` of `input`.
///
/// `SUM` of an empty relation is 0 (integer); `MIN`/`MAX`/`AVG` of an
/// empty relation are undefined and raise [`AlgebraError::EmptyAggregate`].
/// Null values are skipped, matching the usual relational convention.
pub fn eval_aggregate(func: AggFunc, input: &Relation, col: usize) -> Result<Value> {
    let values = || {
        input
            .iter()
            .filter_map(move |t| t.get(col))
            .filter(|v| !v.is_null())
    };
    match func {
        AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut dbl_sum: f64 = 0.0;
            let mut any_double = false;
            for v in values() {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        dbl_sum += *i as f64;
                    }
                    Value::Double(d) => {
                        any_double = true;
                        dbl_sum += d;
                    }
                    other => {
                        return Err(AlgebraError::TypeError(format!(
                            "SUM over non-numeric value {other}"
                        )))
                    }
                }
            }
            Ok(if any_double {
                Value::double(dbl_sum)
            } else {
                Value::Int(int_sum)
            })
        }
        AggFunc::Avg => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in values() {
                sum += v.as_double().ok_or_else(|| {
                    AlgebraError::TypeError(format!("AVG over non-numeric value {v}"))
                })?;
                n += 1;
            }
            if n == 0 {
                Err(AlgebraError::EmptyAggregate("AVG"))
            } else {
                Ok(Value::double(sum / n as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in values() {
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let keep_new = match func {
                            AggFunc::Min => v.compare(&b) == Ordering::Less,
                            AggFunc::Max => v.compare(&b) == Ordering::Greater,
                            _ => unreachable!(),
                        };
                        if keep_new {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or(AlgebraError::EmptyAggregate(match func {
                AggFunc::Min => "MIN",
                _ => "MAX",
            }))
        }
    }
}

/// Evaluate a relational expression to a relation state with the default
/// [`JoinStrategy::Hash`] execution.
pub fn evaluate(expr: &RelExpr, ctx: &impl EvalContext) -> Result<Relation> {
    evaluate_with(expr, ctx, JoinStrategy::Hash)
}

/// Evaluate a relational expression with an explicit [`JoinStrategy`].
pub fn evaluate_with(
    expr: &RelExpr,
    ctx: &impl EvalContext,
    strategy: JoinStrategy,
) -> Result<Relation> {
    match expr {
        RelExpr::Rel(name) => Ok(ctx.relation_state(name)?.clone()),
        RelExpr::Literal(tuples) => {
            let schema = infer_literal_schema(tuples);
            let mut rel = Relation::with_capacity(schema, tuples.len());
            for t in tuples {
                rel.insert_unchecked(t.clone());
            }
            Ok(rel)
        }
        RelExpr::Singleton(exprs) => {
            let empty = Tuple::empty();
            let mut values = Vec::with_capacity(exprs.len());
            for e in exprs {
                values.push(eval_scalar_with(e, &empty, ctx, strategy)?);
            }
            let schema = {
                let attrs: Vec<Attribute> = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        Attribute::new(format!("c{i}"), v.value_type().unwrap_or(ValueType::Int))
                    })
                    .collect();
                Arc::new(
                    RelationSchema::new("one".to_owned(), attrs)
                        .expect("generated names are unique"),
                )
            };
            let mut rel = Relation::with_capacity(schema, 1);
            rel.insert_unchecked(Tuple::from_values(values));
            Ok(rel)
        }
        RelExpr::Select(input, pred) => {
            let input = evaluate_with(input, ctx, strategy)?;
            let mut out = Relation::with_capacity(input.schema().clone(), input.len());
            for t in input.iter() {
                if as_bool(&eval_scalar_with(pred, t, ctx, strategy)?, pred)? {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Project(input, exprs) => {
            let input = evaluate_with(input, ctx, strategy)?;
            let in_types: Vec<ValueType> = input.schema().domain();
            let schema = Arc::new(
                RelationSchema::new(
                    "π".to_owned(),
                    exprs
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            Attribute::new(format!("c{i}"), infer_type_bound(e, &in_types, ctx))
                        })
                        .collect(),
                )
                .expect("generated names are unique"),
            );
            let mut out = Relation::with_capacity(schema, input.len());
            for t in input.iter() {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(eval_scalar_with(e, t, ctx, strategy)?);
                }
                out.insert_unchecked(Tuple::from_values(values));
            }
            Ok(out)
        }
        RelExpr::Join(l, r, pred) => {
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            let schema = concat_schema(left.schema(), right.schema());
            if strategy == JoinStrategy::Hash {
                let total = left.schema().arity() + right.schema().arity();
                if let Some(keys) = extract_equi_keys(pred, left.schema().arity(), total) {
                    return hash_join(&left, &right, &keys, schema, ctx);
                }
            }
            let mut out = Relation::with_capacity(schema, left.len());
            for lt in left.iter() {
                for rt in right.iter() {
                    let joined = lt.concat(rt);
                    if as_bool(&eval_scalar_with(pred, &joined, ctx, strategy)?, pred)? {
                        out.insert_unchecked(joined);
                    }
                }
            }
            Ok(out)
        }
        RelExpr::SemiJoin(l, r, pred) => {
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            if strategy == JoinStrategy::Hash {
                let total = left.schema().arity() + right.schema().arity();
                if let Some(keys) = extract_equi_keys(pred, left.schema().arity(), total) {
                    return hash_semi_anti(&left, &right, &keys, ctx, true);
                }
            }
            let mut out = Relation::with_capacity(left.schema().clone(), left.len());
            for lt in left.iter() {
                if matches_any(lt, &right, pred, ctx, strategy)? {
                    out.insert_unchecked(lt.clone());
                }
            }
            Ok(out)
        }
        RelExpr::AntiJoin(l, r, pred) => {
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            if strategy == JoinStrategy::Hash {
                let total = left.schema().arity() + right.schema().arity();
                if let Some(keys) = extract_equi_keys(pred, left.schema().arity(), total) {
                    return hash_semi_anti(&left, &right, &keys, ctx, false);
                }
            }
            let mut out = Relation::with_capacity(left.schema().clone(), left.len());
            for lt in left.iter() {
                if !matches_any(lt, &right, pred, ctx, strategy)? {
                    out.insert_unchecked(lt.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Union(l, r) => {
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            check_union_compatible(&left, &right)?;
            // Empty or identical-storage right side: the result *is* the
            // left operand — return it without unsharing its COW storage
            // (differential checks union empty deltas constantly).
            if right.is_empty() || left.shares_storage(&right) {
                return Ok(left);
            }
            let mut out = left;
            for t in right.iter() {
                out.insert_unchecked(t.clone());
            }
            Ok(out)
        }
        RelExpr::Difference(l, r) => {
            // Whole-tuple set lookups: `contains` probes the right side's
            // tuple hash set, so this is already a hash "join" on the full
            // key — O(|L| + |R|).
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            check_union_compatible(&left, &right)?;
            if right.is_empty() {
                return Ok(left); // R − ∅ = R, storage shared
            }
            if left.shares_storage(&right) {
                // R − R = ∅ without scanning (e.g. `alarm(R@pre − R@pre)`).
                return Ok(Relation::empty(left.schema().clone()));
            }
            let mut out = Relation::with_capacity(left.schema().clone(), left.len());
            for t in left.iter() {
                if !right.contains(t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Intersect(l, r) => {
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            check_union_compatible(&left, &right)?;
            if left.shares_storage(&right) {
                return Ok(left); // R ∩ R = R, storage shared
            }
            if left.is_empty() || right.is_empty() {
                return Ok(Relation::empty(left.schema().clone()));
            }
            let (small, large) = if left.len() <= right.len() {
                (&left, &right)
            } else {
                (&right, &left)
            };
            let mut out = Relation::with_capacity(left.schema().clone(), small.len());
            for t in small.iter() {
                if large.contains(t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Product(l, r) => {
            let left = evaluate_with(l, ctx, strategy)?;
            let right = evaluate_with(r, ctx, strategy)?;
            let schema = concat_schema(left.schema(), right.schema());
            let mut out = Relation::with_capacity(schema, left.len() * right.len());
            for lt in left.iter() {
                for rt in right.iter() {
                    out.insert_unchecked(lt.concat(rt));
                }
            }
            Ok(out)
        }
    }
}

fn matches_any(
    lt: &Tuple,
    right: &Relation,
    pred: &ScalarExpr,
    ctx: &impl EvalContext,
    strategy: JoinStrategy,
) -> Result<bool> {
    for rt in right.iter() {
        let joined = lt.concat(rt);
        if as_bool(&eval_scalar_with(pred, &joined, ctx, strategy)?, pred)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Verify one bucket candidate: the paired key columns compare equal and
/// the residual predicate (if any) accepts the concatenated tuple.
fn candidate_matches(
    lt: &Tuple,
    rt: &Tuple,
    keys: &JoinKeys,
    ctx: &impl EvalContext,
) -> Result<bool> {
    if !key_values_match(lt, rt, &keys.pairs) {
        return Ok(false);
    }
    if let Some(res) = &keys.residual {
        let joined = lt.concat(rt);
        return as_bool(
            &eval_scalar_with(res, &joined, ctx, JoinStrategy::Hash)?,
            res,
        );
    }
    Ok(true)
}

/// Hash theta-join: build on the smaller input, probe with the larger,
/// verify bucket candidates with the compare-based key test and the
/// residual predicate. The output is identical to the nested-loop join for
/// error-free predicates (see [`crate::keys::extract_equi_keys`]).
fn hash_join(
    left: &Relation,
    right: &Relation,
    keys: &JoinKeys,
    schema: Arc<RelationSchema>,
    ctx: &impl EvalContext,
) -> Result<Relation> {
    let build_left = left.len() <= right.len();
    let (build, probe) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let (build_cols, probe_cols) = if build_left {
        (keys.left_cols(), keys.right_cols())
    } else {
        (keys.right_cols(), keys.left_cols())
    };
    let mut table: FxHashMap<u64, Vec<&Tuple>> = fx_map_with_capacity(build.len());
    for t in build.iter() {
        table
            .entry(hash_key_values(t, &build_cols))
            .or_default()
            .push(t);
    }
    let mut out = Relation::with_capacity(schema, probe.len());
    for pt in probe.iter() {
        let Some(bucket) = table.get(&hash_key_values(pt, &probe_cols)) else {
            continue;
        };
        for bt in bucket {
            let (lt, rt) = if build_left { (*bt, pt) } else { (pt, *bt) };
            if candidate_matches(lt, rt, keys, ctx)? {
                out.insert_unchecked(lt.concat(rt));
            }
        }
    }
    Ok(out)
}

/// Hash semi-join (`keep = true`) / anti-join (`keep = false`): emit left
/// tuples with (without) at least one right match. Builds the hash table
/// on the smaller input either way — probing left tuples against a right
/// table, or scanning the right input against a left table and marking
/// matched left tuples (with early exit once every left tuple matched).
fn hash_semi_anti(
    left: &Relation,
    right: &Relation,
    keys: &JoinKeys,
    ctx: &impl EvalContext,
    keep: bool,
) -> Result<Relation> {
    let mut out = Relation::with_capacity(left.schema().clone(), left.len());
    let (left_cols, right_cols) = (keys.left_cols(), keys.right_cols());
    if right.len() <= left.len() {
        // Build on right, probe each left tuple for a match.
        let mut table: FxHashMap<u64, Vec<&Tuple>> = fx_map_with_capacity(right.len());
        for t in right.iter() {
            table
                .entry(hash_key_values(t, &right_cols))
                .or_default()
                .push(t);
        }
        for lt in left.iter() {
            let mut matched = false;
            if let Some(bucket) = table.get(&hash_key_values(lt, &left_cols)) {
                for rt in bucket {
                    if candidate_matches(lt, rt, keys, ctx)? {
                        matched = true;
                        break;
                    }
                }
            }
            if matched == keep {
                out.insert_unchecked(lt.clone());
            }
        }
    } else {
        // Build on left, scan right once and mark matched left tuples.
        let left_tuples: Vec<&Tuple> = left.iter().collect();
        let mut table: FxHashMap<u64, Vec<u32>> = fx_map_with_capacity(left_tuples.len());
        for (i, t) in left_tuples.iter().enumerate() {
            table
                .entry(hash_key_values(t, &left_cols))
                .or_default()
                .push(i as u32);
        }
        let mut matched = vec![false; left_tuples.len()];
        let mut unmatched = left_tuples.len();
        'scan: for rt in right.iter() {
            let Some(bucket) = table.get(&hash_key_values(rt, &right_cols)) else {
                continue;
            };
            for &i in bucket {
                let i = i as usize;
                if matched[i] {
                    continue;
                }
                if !candidate_matches(left_tuples[i], rt, keys, ctx)? {
                    continue;
                }
                matched[i] = true;
                unmatched -= 1;
                if unmatched == 0 {
                    break 'scan;
                }
            }
        }
        for (i, lt) in left_tuples.iter().enumerate() {
            if matched[i] == keep {
                out.insert_unchecked((*lt).clone());
            }
        }
    }
    Ok(out)
}

fn check_union_compatible(left: &Relation, right: &Relation) -> Result<()> {
    if left.schema().union_compatible(right.schema()) {
        Ok(())
    } else {
        Err(AlgebraError::NotUnionCompatible {
            left: left.schema().to_string(),
            right: right.schema().to_string(),
        })
    }
}

fn concat_schema(left: &Arc<RelationSchema>, right: &Arc<RelationSchema>) -> Arc<RelationSchema> {
    let mut attrs: Vec<Attribute> = Vec::with_capacity(left.arity() + right.arity());
    for (i, a) in left
        .attributes()
        .iter()
        .chain(right.attributes())
        .enumerate()
    {
        // Positional names avoid collisions between the two sides.
        attrs.push(Attribute::new(format!("c{i}"), a.value_type()));
    }
    Arc::new(RelationSchema::new("⨯".to_owned(), attrs).expect("generated names are unique"))
}

fn infer_literal_schema(tuples: &[Tuple]) -> Arc<RelationSchema> {
    let arity = tuples.first().map_or(0, Tuple::arity);
    let attrs: Vec<Attribute> = (0..arity)
        .map(|i| {
            let ty = tuples
                .iter()
                .find_map(|t| t.get(i).and_then(Value::value_type))
                .unwrap_or(ValueType::Int);
            Attribute::new(format!("c{i}"), ty)
        })
        .collect();
    Arc::new(RelationSchema::new("lit".to_owned(), attrs).expect("generated names are unique"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use tm_relational::DatabaseSchema;

    fn test_db() -> Database {
        let schema = DatabaseSchema::from_relations(vec![
            RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Str)]),
            RelationSchema::of("s", &[("x", ValueType::Int)]),
        ])
        .unwrap();
        let mut db = Database::new(schema.into_shared());
        for (a, b) in [(1, "one"), (2, "two"), (3, "three")] {
            db.insert("r", Tuple::of((a, b))).unwrap();
        }
        for x in [2, 3, 4] {
            db.insert("s", Tuple::of((x,))).unwrap();
        }
        db
    }

    #[test]
    fn select_filters() {
        let db = test_db();
        let e = RelExpr::relation("r").select(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(0),
            ScalarExpr::int(1),
        ));
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::of((2, "two"))));
        assert!(out.contains(&Tuple::of((3, "three"))));
    }

    #[test]
    fn project_computes() {
        let db = test_db();
        let e = RelExpr::relation("s").project(vec![ScalarExpr::arith(
            ArithOp::Mul,
            ScalarExpr::col(0),
            ScalarExpr::int(10),
        )]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Tuple::of((20,))));
        assert!(out.contains(&Tuple::of((40,))));
    }

    #[test]
    fn project_deduplicates() {
        let db = test_db();
        let e = RelExpr::relation("r").project(vec![ScalarExpr::int(1)]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 1); // set semantics collapse
    }

    #[test]
    fn join_theta() {
        let db = test_db();
        let e = RelExpr::relation("r").join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2));
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::of((2, "two", 2))));
        assert!(out.contains(&Tuple::of((3, "three", 3))));
    }

    #[test]
    fn semi_and_anti_join_partition() {
        let db = test_db();
        let semi = evaluate(
            &RelExpr::relation("r").semi_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
            &db,
        )
        .unwrap();
        let anti = evaluate(
            &RelExpr::relation("r").anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
            &db,
        )
        .unwrap();
        assert_eq!(semi.len() + anti.len(), 3);
        assert!(semi.contains(&Tuple::of((2, "two"))));
        assert!(anti.contains(&Tuple::of((1, "one"))));
    }

    #[test]
    fn set_operations() {
        let db = test_db();
        let r_ints = RelExpr::relation("r").project_cols(&[0]);
        let s = RelExpr::relation("s");
        let union = evaluate(&r_ints.clone().union(s.clone()), &db).unwrap();
        assert_eq!(union.len(), 4); // {1,2,3} ∪ {2,3,4}
        let diff = evaluate(&r_ints.clone().difference(s.clone()), &db).unwrap();
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&Tuple::of((1,))));
        let inter = evaluate(&r_ints.intersect(s), &db).unwrap();
        assert_eq!(inter.len(), 2);
    }

    #[test]
    fn union_incompatible_rejected() {
        let db = test_db();
        let e = RelExpr::relation("r").union(RelExpr::relation("s"));
        assert!(matches!(
            evaluate(&e, &db),
            Err(AlgebraError::NotUnionCompatible { .. })
        ));
    }

    #[test]
    fn product_sizes() {
        let db = test_db();
        let e = RelExpr::relation("r").product(RelExpr::relation("s"));
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn aggregates() {
        let db = test_db();
        let sum = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Sum, Box::new(RelExpr::relation("s")), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(sum, Value::Int(9));
        let avg = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Avg, Box::new(RelExpr::relation("s")), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(avg, Value::double(3.0));
        let min = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Min, Box::new(RelExpr::relation("s")), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(min, Value::Int(2));
        let cnt = eval_scalar(
            &ScalarExpr::Cnt(Box::new(RelExpr::relation("r"))),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(cnt, Value::Int(3));
    }

    #[test]
    fn empty_aggregates() {
        let db = test_db();
        let empty = RelExpr::relation("s").select(ScalarExpr::false_());
        let sum = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Sum, Box::new(empty.clone()), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(sum, Value::Int(0));
        let min = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Min, Box::new(empty), 0),
            &Tuple::empty(),
            &db,
        );
        assert!(matches!(min, Err(AlgebraError::EmptyAggregate("MIN"))));
    }

    #[test]
    fn singleton_with_aggregate() {
        let db = test_db();
        let e = RelExpr::Singleton(vec![ScalarExpr::Cnt(Box::new(RelExpr::relation("r")))]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::of((3,))));
    }

    #[test]
    fn literal_relation() {
        let db = test_db();
        let e = RelExpr::Literal(vec![Tuple::of((1,)), Tuple::of((2,)), Tuple::of((1,))]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(
            eval_arith(ArithOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            eval_arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)),
            Err(AlgebraError::DivisionByZero)
        ));
        assert_eq!(
            eval_arith(ArithOp::Add, &Value::Int(1), &Value::double(0.5)).unwrap(),
            Value::double(1.5)
        );
        assert!(eval_arith(ArithOp::Add, &Value::str("x"), &Value::Int(1)).is_err());
    }

    #[test]
    fn short_circuit_skips_errors() {
        let db = test_db();
        // Col(99) would error, but the left operand decides.
        let e = ScalarExpr::and(ScalarExpr::false_(), ScalarExpr::col(99));
        assert_eq!(
            eval_scalar(&e, &Tuple::empty(), &db).unwrap(),
            Value::Bool(false)
        );
        let e = ScalarExpr::or(ScalarExpr::true_(), ScalarExpr::col(99));
        assert_eq!(
            eval_scalar(&e, &Tuple::empty(), &db).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn hash_and_nested_join_agree() {
        let db = test_db();
        let pred = ScalarExpr::and(
            ScalarExpr::col_eq(0, 2),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::int(2)),
        );
        let e = RelExpr::relation("r").join(RelExpr::relation("s"), pred);
        let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
        let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
        assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
        assert_eq!(hash.len(), 1);
        assert!(hash.contains(&Tuple::of((3, "three", 3))));
    }

    #[test]
    fn hash_semi_anti_agree_with_nested() {
        let db = test_db();
        for (mk, len) in [
            (
                RelExpr::relation("r").semi_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
                2,
            ),
            (
                RelExpr::relation("r").anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
                1,
            ),
        ] {
            let hash = evaluate_with(&mk, &db, JoinStrategy::Hash).unwrap();
            let nested = evaluate_with(&mk, &db, JoinStrategy::NestedLoop).unwrap();
            assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
            assert_eq!(hash.len(), len);
        }
    }

    #[test]
    fn hash_join_matches_int_against_double() {
        // `compare` equates Int(2) with Double(2.0); the hash path must
        // produce the same matches as the nested loop would.
        let schema = DatabaseSchema::from_relations(vec![
            RelationSchema::of("ints", &[("a", ValueType::Int)]),
            RelationSchema::of("dbls", &[("x", ValueType::Double)]),
        ])
        .unwrap();
        let mut db = Database::new(schema.into_shared());
        for a in [1, 2, 3] {
            db.insert("ints", Tuple::of((a,))).unwrap();
        }
        for x in [2.0_f64, 4.0] {
            db.insert("dbls", Tuple::of((x,))).unwrap();
        }
        let e = RelExpr::relation("ints").join(RelExpr::relation("dbls"), ScalarExpr::col_eq(0, 1));
        let hash = evaluate_with(&e, &db, JoinStrategy::Hash).unwrap();
        let nested = evaluate_with(&e, &db, JoinStrategy::NestedLoop).unwrap();
        assert_eq!(hash.sorted_tuples(), nested.sorted_tuples());
        assert_eq!(hash.len(), 1);
        assert!(hash.contains(&Tuple::of((2, 2.0_f64))));
    }

    #[test]
    fn hash_join_empty_build_side() {
        let db = test_db();
        let empty = RelExpr::relation("s").select(ScalarExpr::false_());
        let e = RelExpr::relation("r").join(empty.clone(), ScalarExpr::col_eq(0, 2));
        assert_eq!(evaluate(&e, &db).unwrap().len(), 0);
        let anti = RelExpr::relation("r").anti_join(empty, ScalarExpr::col_eq(0, 2));
        assert_eq!(evaluate(&anti, &db).unwrap().len(), 3);
    }

    #[test]
    fn non_boolean_predicate_rejected() {
        let db = test_db();
        let e = RelExpr::relation("r").select(ScalarExpr::int(1));
        assert!(matches!(
            evaluate(&e, &db),
            Err(AlgebraError::NotABoolean(_))
        ));
    }
}
