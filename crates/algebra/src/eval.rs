//! Evaluation of scalar and relational expressions.
//!
//! Expressions are evaluated against an [`EvalContext`], which resolves
//! relation names to relation states. During transaction execution the
//! context is a [`crate::exec::TxContext`] (base relations from the working
//! state, temporaries, auxiliary relations); tests may use a plain
//! [`tm_relational::Database`] directly.

use std::cmp::Ordering;
use std::sync::Arc;

use tm_relational::{Attribute, Database, Relation, RelationSchema, Tuple, Value, ValueType};

use crate::error::{AlgebraError, Result};
use crate::expr::{AggFunc, ArithOp, ScalarExpr};
use crate::rel_expr::RelExpr;

/// Read access to relation schemas by name (used at translation and
/// validation time, before any data exists).
pub trait SchemaView {
    /// The schema of relation `name`; auxiliary names (`R@pre`, …) resolve
    /// to their base relation's attribute list.
    fn schema_of(&self, name: &str) -> Result<Arc<RelationSchema>>;
}

/// Read access to relation *states* by name — what expression evaluation
/// needs.
pub trait EvalContext: SchemaView {
    /// The current state of relation `name`.
    fn relation_state(&self, name: &str) -> Result<&Relation>;
}

impl SchemaView for Database {
    fn schema_of(&self, name: &str) -> Result<Arc<RelationSchema>> {
        Ok(self.relation(name)?.schema().clone())
    }
}

impl EvalContext for Database {
    fn relation_state(&self, name: &str) -> Result<&Relation> {
        Ok(self.relation(name)?)
    }
}

/// Evaluate a scalar expression against an input tuple.
pub fn eval_scalar(expr: &ScalarExpr, tuple: &Tuple, ctx: &impl EvalContext) -> Result<Value> {
    match expr {
        ScalarExpr::Const(v) => Ok(v.clone()),
        ScalarExpr::Col(i) => tuple
            .get(*i)
            .cloned()
            .ok_or(AlgebraError::ColumnOutOfRange {
                offset: *i,
                arity: tuple.arity(),
            }),
        ScalarExpr::Arith(op, l, r) => {
            let lv = eval_scalar(l, tuple, ctx)?;
            let rv = eval_scalar(r, tuple, ctx)?;
            eval_arith(*op, &lv, &rv)
        }
        ScalarExpr::Cmp(op, l, r) => {
            let lv = eval_scalar(l, tuple, ctx)?;
            let rv = eval_scalar(r, tuple, ctx)?;
            Ok(Value::Bool(op.test(lv.compare(&rv))))
        }
        ScalarExpr::And(l, r) => {
            // Short-circuit: the right operand is skipped when the left is
            // false, which also skips its runtime errors (two-valued logic).
            if as_bool(&eval_scalar(l, tuple, ctx)?, l)? {
                Ok(Value::Bool(as_bool(&eval_scalar(r, tuple, ctx)?, r)?))
            } else {
                Ok(Value::Bool(false))
            }
        }
        ScalarExpr::Or(l, r) => {
            if as_bool(&eval_scalar(l, tuple, ctx)?, l)? {
                Ok(Value::Bool(true))
            } else {
                Ok(Value::Bool(as_bool(&eval_scalar(r, tuple, ctx)?, r)?))
            }
        }
        ScalarExpr::Not(e) => Ok(Value::Bool(!as_bool(&eval_scalar(e, tuple, ctx)?, e)?)),
        ScalarExpr::IsNull(e) => Ok(Value::Bool(eval_scalar(e, tuple, ctx)?.is_null())),
        ScalarExpr::Agg(func, rel, col) => {
            let input = evaluate(rel, ctx)?;
            eval_aggregate(*func, &input, *col)
        }
        ScalarExpr::Cnt(rel) => {
            let input = evaluate(rel, ctx)?;
            Ok(Value::Int(input.len() as i64))
        }
    }
}

fn as_bool(v: &Value, expr: &ScalarExpr) -> Result<bool> {
    v.as_bool()
        .ok_or_else(|| AlgebraError::NotABoolean(expr.to_string()))
}

fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Ok(Value::Int(a.wrapping_add(*b))),
            ArithOp::Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            ArithOp::Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            ArithOp::Div => {
                if *b == 0 {
                    Err(AlgebraError::DivisionByZero)
                } else {
                    Ok(Value::Int(a.wrapping_div(*b)))
                }
            }
        },
        _ => {
            let a = l
                .as_double()
                .ok_or_else(|| AlgebraError::TypeError(format!("non-numeric operand {l}")))?;
            let b = r
                .as_double()
                .ok_or_else(|| AlgebraError::TypeError(format!("non-numeric operand {r}")))?;
            let v = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(AlgebraError::DivisionByZero);
                    }
                    a / b
                }
            };
            Ok(Value::double(v))
        }
    }
}

/// Evaluate an aggregate over column `col` of `input`.
///
/// `SUM` of an empty relation is 0 (integer); `MIN`/`MAX`/`AVG` of an
/// empty relation are undefined and raise [`AlgebraError::EmptyAggregate`].
/// Null values are skipped, matching the usual relational convention.
pub fn eval_aggregate(func: AggFunc, input: &Relation, col: usize) -> Result<Value> {
    let values = || {
        input
            .iter()
            .filter_map(move |t| t.get(col))
            .filter(|v| !v.is_null())
    };
    match func {
        AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut dbl_sum: f64 = 0.0;
            let mut any_double = false;
            for v in values() {
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        dbl_sum += *i as f64;
                    }
                    Value::Double(d) => {
                        any_double = true;
                        dbl_sum += d;
                    }
                    other => {
                        return Err(AlgebraError::TypeError(format!(
                            "SUM over non-numeric value {other}"
                        )))
                    }
                }
            }
            Ok(if any_double {
                Value::double(dbl_sum)
            } else {
                Value::Int(int_sum)
            })
        }
        AggFunc::Avg => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in values() {
                sum += v.as_double().ok_or_else(|| {
                    AlgebraError::TypeError(format!("AVG over non-numeric value {v}"))
                })?;
                n += 1;
            }
            if n == 0 {
                Err(AlgebraError::EmptyAggregate("AVG"))
            } else {
                Ok(Value::double(sum / n as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in values() {
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let keep_new = match func {
                            AggFunc::Min => v.compare(&b) == Ordering::Less,
                            AggFunc::Max => v.compare(&b) == Ordering::Greater,
                            _ => unreachable!(),
                        };
                        if keep_new {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or(AlgebraError::EmptyAggregate(match func {
                AggFunc::Min => "MIN",
                _ => "MAX",
            }))
        }
    }
}

/// Evaluate a relational expression to a relation state.
pub fn evaluate(expr: &RelExpr, ctx: &impl EvalContext) -> Result<Relation> {
    match expr {
        RelExpr::Rel(name) => Ok(ctx.relation_state(name)?.clone()),
        RelExpr::Literal(tuples) => {
            let schema = infer_literal_schema(tuples);
            let mut rel = Relation::with_capacity(schema, tuples.len());
            for t in tuples {
                rel.insert_unchecked(t.clone());
            }
            Ok(rel)
        }
        RelExpr::Singleton(exprs) => {
            let empty = Tuple::empty();
            let mut values = Vec::with_capacity(exprs.len());
            for e in exprs {
                values.push(eval_scalar(e, &empty, ctx)?);
            }
            let schema = {
                let attrs: Vec<Attribute> = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        Attribute::new(format!("c{i}"), v.value_type().unwrap_or(ValueType::Int))
                    })
                    .collect();
                Arc::new(
                    RelationSchema::new("one".to_owned(), attrs)
                        .expect("generated names are unique"),
                )
            };
            let mut rel = Relation::with_capacity(schema, 1);
            rel.insert_unchecked(Tuple::from_values(values));
            Ok(rel)
        }
        RelExpr::Select(input, pred) => {
            let input = evaluate(input, ctx)?;
            let mut out = Relation::with_capacity(input.schema().clone(), input.len());
            for t in input.iter() {
                if as_bool(&eval_scalar(pred, t, ctx)?, pred)? {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Project(input, exprs) => {
            let input = evaluate(input, ctx)?;
            let in_types: Vec<ValueType> = input.schema().domain();
            let schema = Arc::new(
                RelationSchema::new(
                    "π".to_owned(),
                    exprs
                        .iter()
                        .enumerate()
                        .map(|(i, e)| Attribute::new(format!("c{i}"), e.infer_type(&in_types)))
                        .collect(),
                )
                .expect("generated names are unique"),
            );
            let mut out = Relation::with_capacity(schema, input.len());
            for t in input.iter() {
                let mut values = Vec::with_capacity(exprs.len());
                for e in exprs {
                    values.push(eval_scalar(e, t, ctx)?);
                }
                out.insert_unchecked(Tuple::from_values(values));
            }
            Ok(out)
        }
        RelExpr::Join(l, r, pred) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            let schema = concat_schema(left.schema(), right.schema());
            let mut out = Relation::with_capacity(schema, left.len());
            for lt in left.iter() {
                for rt in right.iter() {
                    let joined = lt.concat(rt);
                    if as_bool(&eval_scalar(pred, &joined, ctx)?, pred)? {
                        out.insert_unchecked(joined);
                    }
                }
            }
            Ok(out)
        }
        RelExpr::SemiJoin(l, r, pred) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            let mut out = Relation::with_capacity(left.schema().clone(), left.len());
            for lt in left.iter() {
                if matches_any(lt, &right, pred, ctx)? {
                    out.insert_unchecked(lt.clone());
                }
            }
            Ok(out)
        }
        RelExpr::AntiJoin(l, r, pred) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            let mut out = Relation::with_capacity(left.schema().clone(), left.len());
            for lt in left.iter() {
                if !matches_any(lt, &right, pred, ctx)? {
                    out.insert_unchecked(lt.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Union(l, r) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            check_union_compatible(&left, &right)?;
            let mut out = left;
            for t in right.iter() {
                out.insert_unchecked(t.clone());
            }
            Ok(out)
        }
        RelExpr::Difference(l, r) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            check_union_compatible(&left, &right)?;
            let mut out = Relation::with_capacity(left.schema().clone(), left.len());
            for t in left.iter() {
                if !right.contains(t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Intersect(l, r) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            check_union_compatible(&left, &right)?;
            let (small, large) = if left.len() <= right.len() {
                (&left, &right)
            } else {
                (&right, &left)
            };
            let mut out = Relation::with_capacity(left.schema().clone(), small.len());
            for t in small.iter() {
                if large.contains(t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RelExpr::Product(l, r) => {
            let left = evaluate(l, ctx)?;
            let right = evaluate(r, ctx)?;
            let schema = concat_schema(left.schema(), right.schema());
            let mut out = Relation::with_capacity(schema, left.len() * right.len());
            for lt in left.iter() {
                for rt in right.iter() {
                    out.insert_unchecked(lt.concat(rt));
                }
            }
            Ok(out)
        }
    }
}

fn matches_any(
    lt: &Tuple,
    right: &Relation,
    pred: &ScalarExpr,
    ctx: &impl EvalContext,
) -> Result<bool> {
    for rt in right.iter() {
        let joined = lt.concat(rt);
        if as_bool(&eval_scalar(pred, &joined, ctx)?, pred)? {
            return Ok(true);
        }
    }
    Ok(false)
}

fn check_union_compatible(left: &Relation, right: &Relation) -> Result<()> {
    if left.schema().union_compatible(right.schema()) {
        Ok(())
    } else {
        Err(AlgebraError::NotUnionCompatible {
            left: left.schema().to_string(),
            right: right.schema().to_string(),
        })
    }
}

fn concat_schema(left: &Arc<RelationSchema>, right: &Arc<RelationSchema>) -> Arc<RelationSchema> {
    let mut attrs: Vec<Attribute> = Vec::with_capacity(left.arity() + right.arity());
    for (i, a) in left
        .attributes()
        .iter()
        .chain(right.attributes())
        .enumerate()
    {
        // Positional names avoid collisions between the two sides.
        attrs.push(Attribute::new(format!("c{i}"), a.value_type()));
    }
    Arc::new(RelationSchema::new("⨯".to_owned(), attrs).expect("generated names are unique"))
}

fn infer_literal_schema(tuples: &[Tuple]) -> Arc<RelationSchema> {
    let arity = tuples.first().map_or(0, Tuple::arity);
    let attrs: Vec<Attribute> = (0..arity)
        .map(|i| {
            let ty = tuples
                .iter()
                .find_map(|t| t.get(i).and_then(Value::value_type))
                .unwrap_or(ValueType::Int);
            Attribute::new(format!("c{i}"), ty)
        })
        .collect();
    Arc::new(RelationSchema::new("lit".to_owned(), attrs).expect("generated names are unique"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use tm_relational::DatabaseSchema;

    fn test_db() -> Database {
        let schema = DatabaseSchema::from_relations(vec![
            RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Str)]),
            RelationSchema::of("s", &[("x", ValueType::Int)]),
        ])
        .unwrap();
        let mut db = Database::new(schema.into_shared());
        for (a, b) in [(1, "one"), (2, "two"), (3, "three")] {
            db.insert("r", Tuple::of((a, b))).unwrap();
        }
        for x in [2, 3, 4] {
            db.insert("s", Tuple::of((x,))).unwrap();
        }
        db
    }

    #[test]
    fn select_filters() {
        let db = test_db();
        let e = RelExpr::relation("r").select(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(0),
            ScalarExpr::int(1),
        ));
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::of((2, "two"))));
        assert!(out.contains(&Tuple::of((3, "three"))));
    }

    #[test]
    fn project_computes() {
        let db = test_db();
        let e = RelExpr::relation("s").project(vec![ScalarExpr::arith(
            ArithOp::Mul,
            ScalarExpr::col(0),
            ScalarExpr::int(10),
        )]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Tuple::of((20,))));
        assert!(out.contains(&Tuple::of((40,))));
    }

    #[test]
    fn project_deduplicates() {
        let db = test_db();
        let e = RelExpr::relation("r").project(vec![ScalarExpr::int(1)]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 1); // set semantics collapse
    }

    #[test]
    fn join_theta() {
        let db = test_db();
        let e = RelExpr::relation("r").join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2));
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::of((2, "two", 2))));
        assert!(out.contains(&Tuple::of((3, "three", 3))));
    }

    #[test]
    fn semi_and_anti_join_partition() {
        let db = test_db();
        let semi = evaluate(
            &RelExpr::relation("r").semi_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
            &db,
        )
        .unwrap();
        let anti = evaluate(
            &RelExpr::relation("r").anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 2)),
            &db,
        )
        .unwrap();
        assert_eq!(semi.len() + anti.len(), 3);
        assert!(semi.contains(&Tuple::of((2, "two"))));
        assert!(anti.contains(&Tuple::of((1, "one"))));
    }

    #[test]
    fn set_operations() {
        let db = test_db();
        let r_ints = RelExpr::relation("r").project_cols(&[0]);
        let s = RelExpr::relation("s");
        let union = evaluate(&r_ints.clone().union(s.clone()), &db).unwrap();
        assert_eq!(union.len(), 4); // {1,2,3} ∪ {2,3,4}
        let diff = evaluate(&r_ints.clone().difference(s.clone()), &db).unwrap();
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&Tuple::of((1,))));
        let inter = evaluate(&r_ints.intersect(s), &db).unwrap();
        assert_eq!(inter.len(), 2);
    }

    #[test]
    fn union_incompatible_rejected() {
        let db = test_db();
        let e = RelExpr::relation("r").union(RelExpr::relation("s"));
        assert!(matches!(
            evaluate(&e, &db),
            Err(AlgebraError::NotUnionCompatible { .. })
        ));
    }

    #[test]
    fn product_sizes() {
        let db = test_db();
        let e = RelExpr::relation("r").product(RelExpr::relation("s"));
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn aggregates() {
        let db = test_db();
        let sum = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Sum, Box::new(RelExpr::relation("s")), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(sum, Value::Int(9));
        let avg = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Avg, Box::new(RelExpr::relation("s")), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(avg, Value::double(3.0));
        let min = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Min, Box::new(RelExpr::relation("s")), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(min, Value::Int(2));
        let cnt = eval_scalar(
            &ScalarExpr::Cnt(Box::new(RelExpr::relation("r"))),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(cnt, Value::Int(3));
    }

    #[test]
    fn empty_aggregates() {
        let db = test_db();
        let empty = RelExpr::relation("s").select(ScalarExpr::false_());
        let sum = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Sum, Box::new(empty.clone()), 0),
            &Tuple::empty(),
            &db,
        )
        .unwrap();
        assert_eq!(sum, Value::Int(0));
        let min = eval_scalar(
            &ScalarExpr::Agg(AggFunc::Min, Box::new(empty), 0),
            &Tuple::empty(),
            &db,
        );
        assert!(matches!(min, Err(AlgebraError::EmptyAggregate("MIN"))));
    }

    #[test]
    fn singleton_with_aggregate() {
        let db = test_db();
        let e = RelExpr::Singleton(vec![ScalarExpr::Cnt(Box::new(RelExpr::relation("r")))]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::of((3,))));
    }

    #[test]
    fn literal_relation() {
        let db = test_db();
        let e = RelExpr::Literal(vec![Tuple::of((1,)), Tuple::of((2,)), Tuple::of((1,))]);
        let out = evaluate(&e, &db).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(
            eval_arith(ArithOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            eval_arith(ArithOp::Div, &Value::Int(1), &Value::Int(0)),
            Err(AlgebraError::DivisionByZero)
        ));
        assert_eq!(
            eval_arith(ArithOp::Add, &Value::Int(1), &Value::double(0.5)).unwrap(),
            Value::double(1.5)
        );
        assert!(eval_arith(ArithOp::Add, &Value::str("x"), &Value::Int(1)).is_err());
    }

    #[test]
    fn short_circuit_skips_errors() {
        let db = test_db();
        // Col(99) would error, but the left operand decides.
        let e = ScalarExpr::and(ScalarExpr::false_(), ScalarExpr::col(99));
        assert_eq!(
            eval_scalar(&e, &Tuple::empty(), &db).unwrap(),
            Value::Bool(false)
        );
        let e = ScalarExpr::or(ScalarExpr::true_(), ScalarExpr::col(99));
        assert_eq!(
            eval_scalar(&e, &Tuple::empty(), &db).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn non_boolean_predicate_rejected() {
        let db = test_db();
        let e = RelExpr::relation("r").select(ScalarExpr::int(1));
        assert!(matches!(
            evaluate(&e, &db),
            Err(AlgebraError::NotABoolean(_))
        ));
    }
}
