//! Scalar expressions: the terms and predicates of the extended algebra.
//!
//! A [`ScalarExpr`] is evaluated against an *input tuple* (for selection
//! predicates this is a tuple of the input relation; for join predicates it
//! is the concatenation of the left and right tuples) and an evaluation
//! context that resolves relation names for aggregate subexpressions.
//!
//! Attributes are referenced by **absolute zero-based offset** into the
//! input tuple ([`ScalarExpr::Col`]). The calculus→algebra translator in
//! `tm-translate` maps CL tuple variables and 1-based attribute selections
//! (`x.i`) onto these offsets.

use std::fmt;

use tm_relational::{Value, ValueType};

use crate::rel_expr::RelExpr;

/// Binary arithmetic operators — the value function symbols
/// `FV = {+, -, *, /}` of Definition 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (errors on division by zero).
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators — the value predicate symbols
/// `PV = {<, ≤, =, ≠, ≥, >}` of Definition 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `≥`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// The negated comparison (`¬(a < b) ⇔ a ≥ b` …). Used by predicate
    /// simplification in the rule optimizer.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Gt => CmpOp::Le,
        }
    }

    /// The mirrored comparison (`a < b ⇔ b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Eq | CmpOp::Ne => self,
        }
    }

    /// Apply the comparison to an [`std::cmp::Ordering`].
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Ge, Greater | Equal)
                | (CmpOp::Gt, Greater)
        )
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// Aggregate function symbols — `FA = {SUM, AVG, MIN, MAX}` plus the
/// counting function `CNT` of Definition 4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of a numeric column.
    Sum,
    /// Average of a numeric column (always a double).
    Avg,
    /// Minimum of a column.
    Min,
    /// Maximum of a column.
    Max,
}

impl AggFunc {
    /// Parser/display name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A scalar expression over an input tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A constant value.
    Const(Value),
    /// A parameter placeholder `?n` (zero-based), resolved at execution
    /// time from the parameter binding of a prepared transaction. A
    /// placeholder behaves exactly like the constant it is bound to;
    /// evaluating an unbound placeholder is a runtime error
    /// ([`crate::error::AlgebraError::UnboundParam`]).
    Param(usize),
    /// The value at an absolute zero-based offset in the input tuple.
    Col(usize),
    /// Binary arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Comparison producing a boolean; numeric comparisons mix int/double.
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical conjunction.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical disjunction.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Logical negation.
    Not(Box<ScalarExpr>),
    /// Null test (compensating actions insert nulls; rules may test them).
    IsNull(Box<ScalarExpr>),
    /// Aggregate function application `AGGR(E, i)` over a relational
    /// subexpression (Definition 4.2's aggregate terms, generalised from
    /// relation constants to expressions as §5.2.2 requires).
    Agg(AggFunc, Box<RelExpr>, usize),
    /// Counting function application `CNT(E)`.
    Cnt(Box<RelExpr>),
}

impl ScalarExpr {
    /// Boolean constant `true`.
    pub fn true_() -> ScalarExpr {
        ScalarExpr::Const(Value::Bool(true))
    }

    /// Boolean constant `false`.
    pub fn false_() -> ScalarExpr {
        ScalarExpr::Const(Value::Bool(false))
    }

    /// Integer constant.
    pub fn int(v: i64) -> ScalarExpr {
        ScalarExpr::Const(Value::Int(v))
    }

    /// String constant.
    pub fn str(v: impl Into<String>) -> ScalarExpr {
        ScalarExpr::Const(Value::Str(v.into()))
    }

    /// Double constant.
    pub fn double(v: f64) -> ScalarExpr {
        ScalarExpr::Const(Value::double(v))
    }

    /// Column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Col(i)
    }

    /// Parameter placeholder `?i`.
    pub fn param(i: usize) -> ScalarExpr {
        ScalarExpr::Param(i)
    }

    /// The placeholder row `?0, ?1, …, ?(n-1)` — the usual source of a
    /// parameterized single-row insert or delete
    /// (`RelExpr::Singleton(ScalarExpr::params(n))`).
    pub fn params(n: usize) -> Vec<ScalarExpr> {
        (0..n).map(ScalarExpr::Param).collect()
    }

    /// Comparison node.
    pub fn cmp(op: CmpOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// Equality comparison of two columns — the common equi-join predicate.
    pub fn col_eq(l: usize, r: usize) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::Col(l), ScalarExpr::Col(r))
    }

    /// Conjunction node.
    pub fn and(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::And(Box::new(l), Box::new(r))
    }

    /// Disjunction node.
    pub fn or(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Or(Box::new(l), Box::new(r))
    }

    /// Negation node.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Not(Box::new(e))
    }

    /// Arithmetic node.
    pub fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Arith(op, Box::new(l), Box::new(r))
    }

    /// Shift every column reference by `delta` (used when an expression
    /// over a right join input moves into a concatenated-tuple context).
    pub fn shift_cols(&self, delta: usize) -> ScalarExpr {
        match self {
            ScalarExpr::Const(v) => ScalarExpr::Const(v.clone()),
            ScalarExpr::Param(i) => ScalarExpr::Param(*i),
            ScalarExpr::Col(i) => ScalarExpr::Col(i + delta),
            ScalarExpr::Arith(op, l, r) => {
                ScalarExpr::arith(*op, l.shift_cols(delta), r.shift_cols(delta))
            }
            ScalarExpr::Cmp(op, l, r) => {
                ScalarExpr::cmp(*op, l.shift_cols(delta), r.shift_cols(delta))
            }
            ScalarExpr::And(l, r) => ScalarExpr::and(l.shift_cols(delta), r.shift_cols(delta)),
            ScalarExpr::Or(l, r) => ScalarExpr::or(l.shift_cols(delta), r.shift_cols(delta)),
            ScalarExpr::Not(e) => ScalarExpr::not(e.shift_cols(delta)),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.shift_cols(delta))),
            // Aggregate subexpressions are closed over their own relation;
            // column offsets inside them do not refer to the outer tuple.
            ScalarExpr::Agg(..) | ScalarExpr::Cnt(..) => self.clone(),
        }
    }

    /// The largest column offset referenced by this expression (ignoring
    /// aggregate subexpressions, which are closed), or `None` if no column
    /// is referenced.
    pub fn max_col(&self) -> Option<usize> {
        match self {
            ScalarExpr::Const(_)
            | ScalarExpr::Param(_)
            | ScalarExpr::Agg(..)
            | ScalarExpr::Cnt(..) => None,
            ScalarExpr::Col(i) => Some(*i),
            ScalarExpr::Arith(_, l, r) | ScalarExpr::Cmp(_, l, r) => {
                max_opt(l.max_col(), r.max_col())
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => max_opt(l.max_col(), r.max_col()),
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.max_col(),
        }
    }

    /// Infer the result type given the input column types. Unknown cases
    /// (e.g. a bare `null` constant) default to `Int`; derived relation
    /// schemas are documentation, and values are validated only when they
    /// enter a *base* relation.
    pub fn infer_type(&self, cols: &[ValueType]) -> ValueType {
        match self {
            ScalarExpr::Const(v) => v.value_type().unwrap_or(ValueType::Int),
            // The value of a placeholder is unknown until bind time; like a
            // bare `null` constant it defaults to `Int` — derived schemas
            // are documentation, base-relation validation is authoritative.
            ScalarExpr::Param(_) => ValueType::Int,
            ScalarExpr::Col(i) => cols.get(*i).copied().unwrap_or(ValueType::Int),
            ScalarExpr::Arith(_, l, r) => {
                if l.infer_type(cols) == ValueType::Double
                    || r.infer_type(cols) == ValueType::Double
                {
                    ValueType::Double
                } else {
                    ValueType::Int
                }
            }
            ScalarExpr::Cmp(..)
            | ScalarExpr::And(..)
            | ScalarExpr::Or(..)
            | ScalarExpr::Not(..)
            | ScalarExpr::IsNull(..) => ValueType::Bool,
            ScalarExpr::Agg(f, _, _) => match f {
                AggFunc::Avg => ValueType::Double,
                // SUM/MIN/MAX inherit the column type; without resolving the
                // subexpression schema here we default to Int, which the
                // evaluator corrects at runtime.
                _ => ValueType::Int,
            },
            ScalarExpr::Cnt(_) => ValueType::Int,
        }
    }

    /// Substitute column references by expressions: `Col(i)` becomes
    /// `row[i].clone()` for `i < row.len()`; higher offsets are left
    /// untouched (they refer past the substituted prefix, e.g. into the
    /// right side of a concatenated join tuple). Aggregate subexpressions
    /// are closed over their own relation and are not entered, mirroring
    /// [`ScalarExpr::shift_cols`]. This is the weakest-precondition step of
    /// check specialization: pushing a known inserted row through a
    /// violation predicate yields the condition the *parameters* must
    /// satisfy, with no relation access left.
    pub fn substitute_cols(&self, row: &[ScalarExpr]) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => match row.get(*i) {
                Some(e) => e.clone(),
                None => ScalarExpr::Col(*i),
            },
            ScalarExpr::Const(_) | ScalarExpr::Param(_) => self.clone(),
            ScalarExpr::Arith(op, l, r) => {
                ScalarExpr::arith(*op, l.substitute_cols(row), r.substitute_cols(row))
            }
            ScalarExpr::Cmp(op, l, r) => {
                ScalarExpr::cmp(*op, l.substitute_cols(row), r.substitute_cols(row))
            }
            ScalarExpr::And(l, r) => {
                ScalarExpr::and(l.substitute_cols(row), r.substitute_cols(row))
            }
            ScalarExpr::Or(l, r) => ScalarExpr::or(l.substitute_cols(row), r.substitute_cols(row)),
            ScalarExpr::Not(e) => ScalarExpr::not(e.substitute_cols(row)),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.substitute_cols(row))),
            ScalarExpr::Agg(..) | ScalarExpr::Cnt(..) => self.clone(),
        }
    }

    /// Whether the expression contains aggregate or counting subterms.
    pub fn has_aggregates(&self) -> bool {
        match self {
            ScalarExpr::Agg(..) | ScalarExpr::Cnt(..) => true,
            ScalarExpr::Const(_) | ScalarExpr::Param(_) | ScalarExpr::Col(_) => false,
            ScalarExpr::Arith(_, l, r) | ScalarExpr::Cmp(_, l, r) => {
                l.has_aggregates() || r.has_aggregates()
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                l.has_aggregates() || r.has_aggregates()
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) => e.has_aggregates(),
        }
    }
}

/// Max of two optional indices (shared by the `max_col`/`max_param`
/// walks here, in `rel_expr`, and in `program`).
pub(crate) fn max_opt(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Param(i) => write!(f, "?{i}"),
            ScalarExpr::Col(i) => write!(f, "#{i}"),
            ScalarExpr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::And(l, r) => write!(f, "({l} and {r})"),
            ScalarExpr::Or(l, r) => write!(f, "({l} or {r})"),
            ScalarExpr::Not(e) => write!(f, "not {e}"),
            ScalarExpr::IsNull(e) => write!(f, "isnull({e})"),
            ScalarExpr::Agg(func, rel, col) => write!(f, "{func}({rel}, {col})"),
            ScalarExpr::Cnt(rel) => write!(f, "CNT({rel})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Ge,
            CmpOp::Gt,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn cmp_test_orderings() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.test(Less));
        assert!(!CmpOp::Lt.test(Equal));
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Ne.test(Greater));
        assert!(!CmpOp::Ne.test(Equal));
        assert!(CmpOp::Ge.test(Greater));
    }

    #[test]
    fn shift_cols_ignores_aggregates() {
        let e = ScalarExpr::and(
            ScalarExpr::col_eq(0, 2),
            ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::Cnt(Box::new(RelExpr::relation("r"))),
                ScalarExpr::int(0),
            ),
        );
        let shifted = e.shift_cols(3);
        assert_eq!(shifted.max_col(), Some(5));
        // The CNT subterm must be untouched.
        let rendered = shifted.to_string();
        assert!(rendered.contains("CNT(r)"));
        assert!(rendered.contains("#3"));
    }

    #[test]
    fn max_col_and_inference() {
        let e = ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(3), ScalarExpr::double(0.0));
        assert_eq!(e.max_col(), Some(3));
        assert_eq!(
            e.infer_type(&[
                ValueType::Str,
                ValueType::Str,
                ValueType::Str,
                ValueType::Double
            ]),
            ValueType::Bool
        );
        let a = ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(0), ScalarExpr::int(1));
        assert_eq!(a.infer_type(&[ValueType::Int]), ValueType::Int);
        assert_eq!(a.infer_type(&[ValueType::Double]), ValueType::Double);
    }

    #[test]
    fn aggregate_detection() {
        assert!(ScalarExpr::Cnt(Box::new(RelExpr::relation("r"))).has_aggregates());
        assert!(!ScalarExpr::col(0).has_aggregates());
        let nested = ScalarExpr::not(ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::Agg(AggFunc::Sum, Box::new(RelExpr::relation("r")), 0),
            ScalarExpr::int(10),
        ));
        assert!(nested.has_aggregates());
    }

    #[test]
    fn substitute_cols_replaces_prefix_only() {
        // (#0 < 0 and #2 = 1): #0 is in the row prefix, #2 is beyond it.
        let e = ScalarExpr::and(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::int(0)),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(2), ScalarExpr::int(1)),
        );
        let row = vec![ScalarExpr::param(3), ScalarExpr::int(7)];
        let s = e.substitute_cols(&row);
        assert_eq!(s.to_string(), "((?3 < 0) and (#2 = 1))");
        // Aggregates are closed: their inner columns are untouched.
        let agg = ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::Cnt(Box::new(RelExpr::relation("r").select(ScalarExpr::col(0)))),
            ScalarExpr::col(0),
        );
        let s = agg.substitute_cols(&row);
        assert!(s.to_string().contains("CNT(select[#0](r))"), "{s}");
        assert!(s.to_string().ends_with("> ?3)"), "{s}");
    }

    #[test]
    fn display_round_trip_shapes() {
        let e = ScalarExpr::and(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::int(5)),
            ScalarExpr::not(ScalarExpr::IsNull(Box::new(ScalarExpr::col(1)))),
        );
        assert_eq!(e.to_string(), "((#0 < 5) and not isnull(#1))");
    }
}
