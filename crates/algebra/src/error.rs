//! Errors raised during algebra evaluation and transaction execution.

use std::fmt;

use tm_relational::RelationalError;

/// Convenience alias used throughout `tm-algebra`.
pub type Result<T> = std::result::Result<T, AlgebraError>;

/// Errors from expression evaluation or statement execution.
///
/// Runtime errors inside a transaction cause the transaction to abort (the
/// atomicity property of Section 2.2 demands either full effect or none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// An error bubbled up from the relational substrate.
    Relational(RelationalError),
    /// A column offset was out of range for the input tuple.
    ColumnOutOfRange {
        /// Requested zero-based offset.
        offset: usize,
        /// Arity of the input tuple.
        arity: usize,
    },
    /// An operator received operands of incompatible types.
    TypeError(String),
    /// Division by zero in an arithmetic term.
    DivisionByZero,
    /// An aggregate over an empty relation has no defined value
    /// (`MIN`/`MAX`/`AVG` of ∅).
    EmptyAggregate(&'static str),
    /// A predicate evaluated to a non-boolean value.
    NotABoolean(String),
    /// The two sides of a set operation are not union-compatible.
    NotUnionCompatible {
        /// Left operand schema rendering.
        left: String,
        /// Right operand schema rendering.
        right: String,
    },
    /// A parameter placeholder `?i` was evaluated without a binding for
    /// it — the transaction is a template that must be bound (or the
    /// binding is too short) before it can execute.
    UnboundParam(usize),
    /// A statement targeted an auxiliary relation (they are read-only).
    AuxiliaryUpdate(String),
    /// Assignment target collides with a base relation name.
    AssignToBase(String),
    /// Recursion/complexity guard tripped (defensive; not expected in
    /// normal operation).
    LimitExceeded(String),
    /// An executor invariant was violated — a bug, surfaced as an
    /// abortable error so the running transaction rolls back cleanly
    /// instead of panicking with the database mid-mutation.
    Internal(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Relational(e) => write!(f, "{e}"),
            AlgebraError::ColumnOutOfRange { offset, arity } => {
                write!(f, "column offset {offset} out of range for arity {arity}")
            }
            AlgebraError::TypeError(msg) => write!(f, "type error: {msg}"),
            AlgebraError::DivisionByZero => write!(f, "division by zero"),
            AlgebraError::EmptyAggregate(func) => {
                write!(f, "aggregate {func} over an empty relation is undefined")
            }
            AlgebraError::NotABoolean(expr) => {
                write!(f, "predicate `{expr}` did not evaluate to a boolean")
            }
            AlgebraError::NotUnionCompatible { left, right } => {
                write!(f, "not union-compatible: {left} vs {right}")
            }
            AlgebraError::UnboundParam(i) => {
                write!(f, "parameter placeholder `?{i}` has no bound value")
            }
            AlgebraError::AuxiliaryUpdate(name) => {
                write!(f, "auxiliary relation `{name}` is read-only")
            }
            AlgebraError::AssignToBase(name) => {
                write!(f, "assignment target `{name}` is a base relation")
            }
            AlgebraError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            AlgebraError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for AlgebraError {
    fn from(e: RelationalError) -> Self {
        AlgebraError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = AlgebraError::from(RelationalError::UnknownRelation("r".into()));
        assert!(e.to_string().contains('r'));
        assert!(e.source().is_some());
        assert!(AlgebraError::DivisionByZero.source().is_none());
        assert!(AlgebraError::EmptyAggregate("MIN")
            .to_string()
            .contains("MIN"));
    }
}
