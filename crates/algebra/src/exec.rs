//! Transaction execution with full atomicity (Definition 2.5) in **O(Δ)**.
//!
//! A transaction `T = ⟨a1; …; an⟩` executes against a database state `D^t`.
//! During execution the database passes through intermediate states
//! `D^{t,1}, …, D^{t,n}` that may contain temporary relations; these states
//! "have no semantics beyond the execution of T". The end bracket then
//! installs `[D^{t,n}]` (temporaries removed) as `D^{t+1}` on commit, or
//! re-installs `D^t` on abort — the atomicity property of Section 2.2.
//!
//! The executor also maintains the auxiliary relations of Section 4.1 for
//! every base relation `R`:
//!
//! * `R@pre` — the state of `R` at transaction begin (pre-transaction
//!   state, used by transition constraints),
//! * `R@ins` — the net set of tuples inserted so far (`R − R@pre`),
//! * `R@del` — the net set of tuples deleted so far (`R@pre − R`).
//!
//! The differentials are maintained incrementally with the classic rules:
//! an insertion of `t` cancels a pending deletion of `t` if one exists,
//! otherwise it records `t` in `R@ins` (symmetrically for deletions), so
//! the invariants `R@ins = R − R@pre` and `R@del = R@pre − R` hold after
//! every statement — property-tested in `tests/`.
//!
//! ## The logical snapshot
//!
//! Atomicity does **not** copy the database. The executor mutates the
//! caller's state in place and relies on the differentials doubling as an
//! exact change record (every actual base-relation mutation flows through
//! `note_insert`/`note_delete`):
//!
//! * **commit** keeps the mutated state and drops the records — O(1);
//! * **abort** applies the inverse delta (remove `R@ins`, re-insert
//!   `R@del`) — O(Δ), restoring a state set-identical to `D^t`;
//! * **`R@pre`** is *reconstructed* on first reference as
//!   `(R − R@ins) ∪ R@del` and cached for the rest of the transaction —
//!   free for untouched relations (the reconstruction is a copy-on-write
//!   clone of the live state), one set copy for relations the transaction
//!   already modified.
//!
//! This is the "logical update view" realization of snapshots — sharing
//! plus change records instead of physical copies — so the cost of a
//! transaction is proportional to its delta and the data its checks
//! actually read, never to the size of the database. Expression results
//! are copy-on-write clones, so a statement reading the relation it
//! updates still sees a consistent input (the first write unshares the
//! live set from the evaluated copy). Every *error* path rolls back
//! exactly; a Rust panic mid-transaction, however, leaves the in-place
//! state mid-flight — unwinding recovery is out of scope for this
//! main-memory engine.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use tm_relational::{
    auxiliary::{self, AuxKind},
    Database, Relation, RelationDelta, RelationSchema, Tuple, Value,
};

use crate::error::{AlgebraError, Result};
use crate::eval::{eval_arith, eval_scalar, evaluate, EvalContext, SchemaView};
use crate::expr::{ArithOp, CmpOp, ScalarExpr};
use crate::keys::key_values_match;
use crate::program::{Statement, Transaction};
use crate::rel_expr::RelExpr;
use tm_relational::util::FxHashMap;

/// Execution statistics for a transaction, used by the benchmark harness
/// and by the engine's reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Statements executed (including appended integrity statements).
    pub statements: usize,
    /// `alarm` statements evaluated.
    pub alarms_evaluated: usize,
    /// `alarm` statements that fired (non-empty argument).
    pub alarms_fired: usize,
    /// Tuples actually inserted into base relations (net of duplicates).
    pub tuples_inserted: usize,
    /// Tuples actually deleted from base relations.
    pub tuples_deleted: usize,
}

/// Wall-clock capture of the integrity checks one execution evaluated —
/// the instrumentation behind per-rule check latencies in the service
/// metrics. Timing is **opt-in** (see
/// [`Executor::execute_plan_instrumented`]): two clock reads per check are
/// measurable against the few-hundred-nanosecond fast path, so the default
/// entry points never pay them.
#[derive(Debug, Default)]
pub struct CheckTimings {
    /// Index of the first statement to time — the boundary between the
    /// submitted transaction's own statements and the checks `ModT`
    /// appended to it (alarms before the boundary belong to the user
    /// program, not to a rule).
    pub first: usize,
    /// Nanoseconds per timed `alarm` evaluation, in execution order. An
    /// aborting check records its time before the abort unwinds.
    pub ns: Vec<u64>,
}

/// The outcome of executing a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOutcome {
    /// The transaction committed; the post-state was installed.
    Committed(ExecStats),
    /// The transaction aborted; the pre-state was re-installed.
    Aborted {
        /// Why the transaction aborted.
        reason: AbortReason,
        /// Statistics up to the abort point.
        stats: ExecStats,
    },
}

impl TxOutcome {
    /// Whether the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxOutcome::Committed(_))
    }

    /// The statistics regardless of outcome.
    pub fn stats(&self) -> &ExecStats {
        match self {
            TxOutcome::Committed(s) => s,
            TxOutcome::Aborted { stats, .. } => stats,
        }
    }
}

/// Why a transaction aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// An `alarm(E)` statement found `E` non-empty (Definition 5.1) —
    /// an integrity constraint was violated.
    AlarmFired {
        /// Rendering of the alarm's argument expression.
        expr: String,
        /// Number of violating tuples the alarm saw.
        violations: usize,
    },
    /// An explicit `abort` statement was executed.
    ExplicitAbort,
    /// A runtime error occurred; atomicity demands rollback.
    RuntimeError(AlgebraError),
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::AlarmFired { expr, violations } => {
                write!(f, "alarm fired on {violations} violating tuple(s): {expr}")
            }
            AbortReason::ExplicitAbort => write!(f, "explicit abort"),
            AbortReason::RuntimeError(e) => write!(f, "runtime error: {e}"),
        }
    }
}

/// The evaluation context of a running transaction: the working database
/// state (the caller's state, mutated in place), the temporaries of the
/// intermediate states `D^{t,i}`, and the auxiliary relations.
///
/// Opening the context is O(1): nothing is cloned. The differential maps
/// start **empty** — an absent entry *is* the empty differential — and the
/// `R@pre` cache starts empty too. Entries are allocated only when the
/// transaction first touches them: on the first recorded change to `R`, or
/// when a statement's expressions mention the auxiliary by name (they are
/// materialized just before the statement runs, so reads of untouched
/// differentials resolve to a freshly shared empty relation and `R@pre`
/// of an untouched relation is a copy-on-write clone of `R` itself).
pub struct TxContext<'db> {
    working: &'db mut Database,
    /// The parameter binding of this execution; placeholder `?i` resolves
    /// to `params[i]`. Empty for ground (non-prepared) transactions, in
    /// which case any remaining placeholder aborts the transaction with
    /// [`AlgebraError::UnboundParam`].
    params: &'db [Value],
    /// Lazily reconstructed pre-transaction states, `(R − R@ins) ∪ R@del`
    /// at first reference (backs `R@pre`; immutable once cached).
    pre: FxHashMap<String, Relation>,
    temps: FxHashMap<String, Relation>,
    ins: FxHashMap<String, Relation>,
    del: FxHashMap<String, Relation>,
    stats: ExecStats,
}

impl<'db> TxContext<'db> {
    /// Open a transaction context over the current database state —
    /// no copies at all; the state is mutated in place and
    /// [`TxContext::rollback`] undoes every recorded change on abort.
    pub fn begin(db: &'db mut Database) -> TxContext<'db> {
        TxContext::begin_bound(db, &[])
    }

    /// Open a transaction context with a parameter binding: placeholder
    /// `?i` in any evaluated expression resolves to `params[i]`.
    pub fn begin_bound(db: &'db mut Database, params: &'db [Value]) -> TxContext<'db> {
        TxContext {
            working: db,
            params,
            pre: FxHashMap::default(),
            temps: FxHashMap::default(),
            ins: FxHashMap::default(),
            del: FxHashMap::default(),
            stats: ExecStats::default(),
        }
    }

    /// The working state (the current intermediate state `D^{t,i}`).
    pub fn working(&self) -> &Database {
        self.working
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Undo every change this transaction made to the working state by
    /// applying the inverse of the net differentials — O(Δ). After the
    /// call the working state is set-identical to the state at
    /// [`TxContext::begin`] and the differentials are empty.
    pub fn rollback(&mut self) {
        let mut bases: Vec<&String> = self.ins.keys().chain(self.del.keys()).collect();
        bases.sort();
        bases.dedup();
        for base in bases {
            let rel = self
                .working
                .relation_mut(base)
                .expect("differential tracks an existing base relation");
            apply_inverse_delta(
                rel,
                self.ins.get(base.as_str()),
                self.del.get(base.as_str()),
            );
        }
        self.ins.clear();
        self.del.clear();
        self.pre.clear();
    }

    /// Flatten the net differential maps into per-relation redo records,
    /// sorted by relation name (and tuple order within each list) so the
    /// serialized form is byte-deterministic. Called at commit by the
    /// capturing executor entry points; relations whose net change is
    /// empty are omitted.
    fn net_deltas(&self) -> Vec<RelationDelta> {
        let mut bases: Vec<&String> = self.ins.keys().chain(self.del.keys()).collect();
        bases.sort();
        bases.dedup();
        let mut out = Vec::with_capacity(bases.len());
        for base in bases {
            let inserted = self
                .ins
                .get(base.as_str())
                .map(Relation::sorted_tuples)
                .unwrap_or_default();
            let deleted = self
                .del
                .get(base.as_str())
                .map(Relation::sorted_tuples)
                .unwrap_or_default();
            if inserted.is_empty() && deleted.is_empty() {
                continue;
            }
            out.push(RelationDelta {
                relation: base.clone(),
                inserted,
                deleted,
            });
        }
        out
    }

    fn delta_relation<'m>(
        map: &'m mut FxHashMap<String, Relation>,
        base_schema: Arc<RelationSchema>,
        base: &str,
        kind: AuxKind,
    ) -> &'m mut Relation {
        map.entry(base.to_owned()).or_insert_with(|| {
            Relation::empty(Arc::new(
                base_schema.renamed(auxiliary::aux_name(base, kind)),
            ))
        })
    }

    /// Materialize the auxiliary entries named by `refs` (computed by
    /// [`statement_aux_refs`], either just-in-time or once at
    /// [`ExecPlan::compile`] time), so `relation_state` never has to
    /// answer for an absent entry. Cost is proportional to the number of
    /// auxiliaries named plus the pre-states among them: entries are
    /// allocated once per transaction. `R@pre` of an untouched relation
    /// is a copy-on-write clone of `R`; for an already-modified relation
    /// it is reconstructed as `(R − R@ins) ∪ R@del` (one set copy).
    fn ensure_aux(&mut self, refs: &[(String, AuxKind)]) {
        for (base, kind) in refs {
            // Unknown bases are left absent everywhere; the read path
            // reports the error exactly as before.
            let Ok(rel) = self.working.relation(base) else {
                continue;
            };
            let schema = rel.schema().clone();
            match kind {
                AuxKind::Ins => {
                    Self::delta_relation(&mut self.ins, schema, base, AuxKind::Ins);
                }
                AuxKind::Del => {
                    Self::delta_relation(&mut self.del, schema, base, AuxKind::Del);
                }
                AuxKind::Pre => {
                    if self.pre.contains_key(base.as_str()) {
                        continue;
                    }
                    // Reconstruct the begin state from the live state and
                    // the net change records — the same inverse-delta
                    // application `rollback` performs; valid at any
                    // statement boundary by the differential invariants,
                    // and cached because the begin state never changes.
                    let mut pre = rel.clone();
                    apply_inverse_delta(
                        &mut pre,
                        self.ins.get(base.as_str()),
                        self.del.get(base.as_str()),
                    );
                    self.pre.insert(base.clone(), pre);
                }
            }
        }
    }

    /// Record the actual insertion of `t` into base relation `base`,
    /// maintaining the net differentials.
    fn note_insert(&mut self, base: &str, t: &Tuple) {
        let schema = self
            .working
            .relation(base)
            .expect("base exists")
            .schema()
            .clone();
        let del = Self::delta_relation(&mut self.del, schema.clone(), base, AuxKind::Del);
        if !del.remove(t) {
            let ins = Self::delta_relation(&mut self.ins, schema, base, AuxKind::Ins);
            ins.insert_unchecked(t.clone());
        }
        self.stats.tuples_inserted += 1;
    }

    /// Record the actual deletion of `t` from base relation `base`.
    fn note_delete(&mut self, base: &str, t: &Tuple) {
        let schema = self
            .working
            .relation(base)
            .expect("base exists")
            .schema()
            .clone();
        let ins = Self::delta_relation(&mut self.ins, schema.clone(), base, AuxKind::Ins);
        if !ins.remove(t) {
            let del = Self::delta_relation(&mut self.del, schema, base, AuxKind::Del);
            del.insert_unchecked(t.clone());
        }
        self.stats.tuples_deleted += 1;
    }

    /// Execute one statement against the working state. `aux` is the
    /// statement's auxiliary-reference analysis when the caller holds a
    /// compiled [`ExecPlan`]; `None` computes it just in time.
    fn execute_statement(
        &mut self,
        stmt: &Statement,
        aux: Option<&[(String, AuxKind)]>,
    ) -> std::result::Result<(), AbortReason> {
        self.stats.statements += 1;
        match aux {
            Some(refs) => self.ensure_aux(refs),
            None => {
                let refs = statement_aux_refs(stmt);
                self.ensure_aux(&refs);
            }
        }
        match stmt {
            Statement::Assign { target, expr } => self.run(|ctx| {
                if ctx.working.schema().contains(target) {
                    return Err(AlgebraError::AssignToBase(target.clone()));
                }
                if auxiliary::is_auxiliary(target) {
                    return Err(AlgebraError::AuxiliaryUpdate(target.clone()));
                }
                let rel = evaluate(expr, ctx)?;
                ctx.temps.insert(target.clone(), rel);
                Ok(())
            }),
            Statement::Insert { relation, source } => self.run(|ctx| {
                if auxiliary::is_auxiliary(relation) {
                    return Err(AlgebraError::AuxiliaryUpdate(relation.clone()));
                }
                let src = evaluate(source, ctx)?;
                let target_schema = ctx.working.relation(relation)?.schema().clone();
                for t in src.iter() {
                    target_schema.validate_tuple(t)?;
                }
                // Bulk apply: borrow the target once — one name lookup and
                // at most one COW unshare for the whole statement (this is
                // the path view refresh materialization takes too) — then
                // record the net differential changes.
                let mut inserted: Vec<Tuple> = Vec::new();
                {
                    let rel = ctx.working.relation_mut(relation)?;
                    for t in src.iter() {
                        if rel.insert_unchecked(t.clone()) {
                            inserted.push(t.clone());
                        }
                    }
                }
                for t in &inserted {
                    ctx.note_insert(relation, t);
                }
                Ok(())
            }),
            Statement::Delete { relation, source } => self.run(|ctx| {
                if auxiliary::is_auxiliary(relation) {
                    return Err(AlgebraError::AuxiliaryUpdate(relation.clone()));
                }
                let src = evaluate(source, ctx)?;
                // Arity mismatches surface as "tuple not present" under set
                // semantics; validate explicitly for a better error.
                let target_schema = ctx.working.relation(relation)?.schema().clone();
                for t in src.iter() {
                    target_schema.validate_tuple(t)?;
                }
                // Bulk apply with a single borrow of the target, as for
                // insert above.
                let mut removed: Vec<Tuple> = Vec::new();
                {
                    let rel = ctx.working.relation_mut(relation)?;
                    for t in src.iter() {
                        if rel.remove(t) {
                            removed.push(t.clone());
                        }
                    }
                }
                for t in &removed {
                    ctx.note_delete(relation, t);
                }
                Ok(())
            }),
            Statement::Update {
                relation,
                pred,
                set,
            } => self.run(|ctx| {
                if auxiliary::is_auxiliary(relation) {
                    return Err(AlgebraError::AuxiliaryUpdate(relation.clone()));
                }
                let target_schema = ctx.working.relation(relation)?.schema().clone();
                // Single scan over the live relation: evaluation only
                // *reads* the context, so no snapshot of the whole state is
                // needed, and only the selected (old, new) pairs are ever
                // materialized — O(Δ) space, not O(|R|). Mutation happens
                // after the scan (below), so the iterator is never
                // invalidated. A predicate selecting nothing leaves the
                // relation's COW storage shared.
                let mut pairs: Vec<(Tuple, Tuple)> = Vec::new();
                for t in ctx.working.relation(relation)?.iter() {
                    let selected = eval_scalar(pred, t, ctx)?
                        .as_bool()
                        .ok_or_else(|| AlgebraError::NotABoolean(pred.to_string()))?;
                    if !selected {
                        continue;
                    }
                    let mut values = t.values().to_vec();
                    for a in set {
                        if a.position >= values.len() {
                            return Err(AlgebraError::ColumnOutOfRange {
                                offset: a.position,
                                arity: values.len(),
                            });
                        }
                        values[a.position] = eval_scalar(&a.value, t, ctx)?;
                    }
                    let new_t = Tuple::from_values(values);
                    target_schema.validate_tuple(&new_t)?;
                    pairs.push((t.clone(), new_t));
                }
                // Apply as delete-then-insert (Definition 4.5's reading of
                // an update as a DEL/INS combination).
                for (old, _) in &pairs {
                    if ctx.working.relation_mut(relation)?.remove(old) {
                        ctx.note_delete(relation, old);
                    }
                }
                for (_, new_t) in &pairs {
                    if ctx
                        .working
                        .relation_mut(relation)?
                        .insert_unchecked(new_t.clone())
                    {
                        ctx.note_insert(relation, new_t);
                    }
                }
                Ok(())
            }),
            Statement::Alarm(expr) => {
                self.stats.alarms_evaluated += 1;
                let rel = match evaluate(expr, self) {
                    Ok(rel) => rel,
                    Err(e) => return Err(AbortReason::RuntimeError(e)),
                };
                if rel.is_empty() {
                    Ok(())
                } else {
                    self.stats.alarms_fired += 1;
                    Err(AbortReason::AlarmFired {
                        expr: expr.to_string(),
                        violations: rel.len(),
                    })
                }
            }
            Statement::Abort => Err(AbortReason::ExplicitAbort),
        }
    }

    fn run(
        &mut self,
        f: impl FnOnce(&mut TxContext) -> Result<()>,
    ) -> std::result::Result<(), AbortReason> {
        f(self).map_err(AbortReason::RuntimeError)
    }
}

/// The auxiliary relations a statement's expressions can read, as
/// `(base, kind)` pairs. This is the analysis `TxContext` needs before a
/// statement runs; [`ExecPlan::compile`] precomputes it once per statement
/// so repeated executions of a prepared transaction skip the expression
/// walk (and its string allocations) entirely.
pub fn statement_aux_refs(stmt: &Statement) -> Vec<(String, AuxKind)> {
    let names = match stmt {
        Statement::Assign { expr, .. } | Statement::Alarm(expr) => expr.referenced_relations(),
        Statement::Insert { source, .. } | Statement::Delete { source, .. } => {
            source.referenced_relations()
        }
        Statement::Update { pred, set, .. } => {
            let mut v = pred.referenced_relations();
            for a in set {
                v.extend(a.value.referenced_relations());
            }
            v
        }
        Statement::Abort => Vec::new(),
    };
    names
        .into_iter()
        .filter_map(|name| {
            auxiliary::parse_auxiliary(&name).map(|(base, kind)| (base.to_owned(), kind))
        })
        .collect()
}

/// A compiled execution plan: a transaction template together with the
/// per-statement auxiliary-reference analysis and its parameter count,
/// both computed once. Executing through a plan
/// ([`Executor::execute_plan`]) does no per-execution analysis of the
/// transaction — the engine's prepared-transaction surface (`txmod`)
/// builds one `ExecPlan` per prepared statement and reuses it for every
/// binding.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecPlan {
    tx: Transaction,
    aux: Vec<Vec<(String, AuxKind)>>,
    param_count: usize,
    fast: Option<Vec<FastOp>>,
}

impl ExecPlan {
    /// Compile a transaction into a plan (one walk over its statements).
    pub fn compile(tx: Transaction) -> ExecPlan {
        let aux = tx
            .debracket()
            .statements()
            .iter()
            .map(statement_aux_refs)
            .collect();
        let param_count = tx.param_count();
        let fast = recognize_fast(&tx);
        ExecPlan {
            aux,
            param_count,
            fast,
            tx,
        }
    }

    /// The planned transaction template.
    pub fn transaction(&self) -> &Transaction {
        &self.tx
    }

    /// Consume the plan, returning the template.
    pub fn into_transaction(self) -> Transaction {
        self.tx
    }

    /// Number of parameter slots the template requires (0 = ground).
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Whether the plan executes on the fast path: every statement was
    /// recognized as a grounded singleton write or a specialized
    /// point-probe check, so execution touches only the rows it names —
    /// no relation clones, no differential bookkeeping, no derived-schema
    /// allocations. See `recognize_fast` for the recognized shapes.
    pub fn is_fast(&self) -> bool {
        self.fast.is_some()
    }

    /// The base relations whose **live state** this plan's execution
    /// reads — the relation-level half of its conflict footprint for
    /// snapshot concurrency. Sorted and deduplicated.
    ///
    /// Fast plans read nothing but their probe relations: point checks
    /// evaluate over parameters alone, and a singleton write's
    /// present/absent dependence on its own tuple is covered tuple-wise
    /// by [`ExecPlan::declared_writes`]. Generic plans are accounted
    /// conservatively: every referenced base relation **including write
    /// targets** (a multi-row delete's net effect depends on the target's
    /// contents), with transaction-local names excluded — temporaries,
    /// and the `R@ins`/`R@del` differentials, which describe this
    /// transaction's own changes, not the snapshot. `R@pre` reads map to
    /// the base relation: the pre-state is reconstructed from the live
    /// snapshot.
    pub fn read_relations(&self) -> Vec<String> {
        use std::collections::BTreeSet;
        if let Some(ops) = &self.fast {
            let set: BTreeSet<&String> = ops
                .iter()
                .filter_map(|op| match op {
                    FastOp::Probe { relation, .. } => Some(relation),
                    _ => None,
                })
                .collect();
            return set.into_iter().cloned().collect();
        }
        let mut temps: BTreeSet<&str> = BTreeSet::new();
        let mut reads: BTreeSet<String> = BTreeSet::new();
        for stmt in self.tx.debracket().statements() {
            let mut names = match stmt {
                Statement::Assign { target, expr } => {
                    temps.insert(target);
                    expr.referenced_relations()
                }
                Statement::Insert { relation, source } | Statement::Delete { relation, source } => {
                    let mut v = source.referenced_relations();
                    v.push(relation.clone());
                    v
                }
                Statement::Update {
                    relation,
                    pred,
                    set,
                } => {
                    let mut v = pred.referenced_relations();
                    for a in set {
                        v.extend(a.value.referenced_relations());
                    }
                    v.push(relation.clone());
                    v
                }
                Statement::Alarm(expr) => expr.referenced_relations(),
                Statement::Abort => Vec::new(),
            };
            for name in names.drain(..) {
                if let Some((base, kind)) = auxiliary::parse_auxiliary(&name) {
                    if matches!(kind, AuxKind::Pre) {
                        reads.insert(base.to_owned());
                    }
                    continue;
                }
                if temps.contains(name.as_str()) {
                    continue;
                }
                reads.insert(name);
            }
        }
        reads.into_iter().collect()
    }

    /// The singleton rows a **fast** plan declares it will insert or
    /// delete, evaluated against `params` — the tuple-level half of its
    /// conflict footprint. Rows are reported whether or not the write
    /// will net to a change (a no-op insert of an already-present tuple
    /// is an undeclared read of that tuple's presence, so it must
    /// participate in conflict detection). A row whose evaluation fails
    /// is skipped: that failure aborts the execution before any
    /// state-dependent decision, so it carries no footprint.
    ///
    /// `None` for generic plans — their write targets are already covered
    /// relation-wise by [`ExecPlan::read_relations`].
    pub fn declared_writes(&self, params: &[Value]) -> Option<Vec<(String, Tuple)>> {
        let ops = self.fast.as_ref()?;
        let ctx = ParamsCtx { params };
        let empty = Tuple::empty();
        let mut out = Vec::new();
        for op in ops {
            let (relation, row) = match op {
                FastOp::Insert { relation, row } | FastOp::Delete { relation, row } => {
                    (relation, row)
                }
                _ => continue,
            };
            let values: std::result::Result<Vec<Value>, _> =
                row.iter().map(|e| eval_scalar(e, &empty, &ctx)).collect();
            if let Ok(values) = values {
                out.push((relation.clone(), Tuple::from_values(values)));
            }
        }
        Some(out)
    }
}

/// One statement of a fast-path plan — the compiled form of the statement
/// shapes prepare-time specialization emits (grounded singleton writes and
/// `alarm` checks over a single candidate row). Recognized once at
/// [`ExecPlan::compile`]; executed without a [`TxContext`].
#[derive(Debug, Clone, PartialEq)]
enum FastOp {
    /// `insert(R, ⟨e0, …, ek⟩)` of a grounded (column-free, aggregate-free)
    /// row.
    Insert {
        relation: String,
        row: Vec<ScalarExpr>,
    },
    /// `delete(R, ⟨e0, …, ek⟩)` of a grounded row.
    Delete {
        relation: String,
        row: Vec<ScalarExpr>,
    },
    /// `alarm(select[p](⟨row⟩))` — a domain check on one candidate row.
    /// `check` is `p` with every `#i` replaced by `row[i]` (the weakest
    /// precondition of the alarm over the singleton), so evaluation needs
    /// no tuple at all; `pred_text`/`alarm_text` preserve the generic
    /// path's error and abort renderings. `row_params` is `Some(n)` when
    /// the row is constants and parameters only — then row evaluation
    /// cannot fail once `n` parameters are bound and is skipped entirely
    /// (its values are unused; it is evaluated by the generic path only
    /// for error ordering).
    /// `flat` is the postfix compilation of `check` when the expression
    /// is jump-free (see [`compile_flat`]); evaluation then runs a tight
    /// loop over contiguous instructions instead of chasing `Box`ed AST
    /// nodes.
    Check {
        row: Vec<ScalarExpr>,
        row_params: Option<usize>,
        check: ScalarExpr,
        flat: Option<Vec<Instr>>,
        pred_text: String,
        alarm_text: String,
    },
    /// `alarm(antijoin[p](⟨row⟩, S))` — a referential check probing the
    /// live relation `S` for a partner of one candidate row. `pairs` are
    /// `(row column, S column)` equalities extracted from `p` at compile
    /// time (S's arity is unknown until execution, so they are validated
    /// against it per run); `residual` is the rest of `p`, and `pred` the
    /// original for the no-keys scan fallback. `row_params` is the
    /// infallible-row witness (see [`FastOp::Check`]); `full_key` records
    /// that `p` is pure distinct key equalities, so whenever the pairs
    /// also cover all of S's columns the probe is decided by one borrowed
    /// set lookup built straight from the bound parameters — no row
    /// evaluation, no tuple.
    Probe {
        row: Vec<ScalarExpr>,
        row_params: Option<usize>,
        relation: String,
        pairs: Vec<(usize, usize)>,
        full_key: bool,
        residual: Option<ScalarExpr>,
        pred: ScalarExpr,
        alarm_text: String,
    },
}

impl FastOp {
    /// The base relation a write op targets (checks never mutate).
    fn write_target(&self) -> &str {
        match self {
            FastOp::Insert { relation, .. } | FastOp::Delete { relation, .. } => relation,
            FastOp::Check { .. } | FastOp::Probe { .. } => {
                unreachable!("checks are not undo-logged")
            }
        }
    }
}

/// A scalar expression the fast path can evaluate without an input tuple
/// or relation access: no columns, no aggregates (parameters are fine).
fn grounded(e: &ScalarExpr) -> bool {
    e.max_col().is_none() && !e.has_aggregates()
}

/// One instruction of a flat postfix check program — the compiled form
/// of a jump-free scalar expression (constants, parameters, arithmetic,
/// comparisons). Connectives are excluded: their short-circuit semantics
/// would need jumps, and the specializer's point checks are overwhelmingly
/// bare comparisons.
#[derive(Debug, Clone, PartialEq)]
enum Instr {
    /// Push a constant.
    Const(Value),
    /// Push the value bound to `?i` (error if unbound).
    Param(usize),
    /// Pop two operands, push the arithmetic result.
    Arith(ArithOp),
    /// Pop two operands, push the boolean comparison result.
    Cmp(CmpOp),
    /// Pop one operand `l`, push `l op const` — a [`Instr::Const`]
    /// followed by [`Instr::Arith`], fused so the constant is never
    /// cloned onto the stack.
    ArithConst(ArithOp, Value),
    /// Pop one operand `l`, push `l op const` — fused comparison.
    CmpConst(CmpOp, Value),
}

/// Peephole-fuse a postfix program: a constant push consumed immediately
/// as the right operand of an arithmetic or comparison instruction folds
/// into the operator. The specializer's point checks (`?i + c >= d`)
/// collapse from five instructions and three stack pushes to three
/// instructions and one push. Evaluation order and errors are unchanged —
/// constants cannot fail, and the left operand still evaluates first.
fn fuse_flat(prog: &mut Vec<Instr>) {
    let mut out = Vec::with_capacity(prog.len());
    for ins in prog.drain(..) {
        match ins {
            Instr::Arith(op) if matches!(out.last(), Some(Instr::Const(_))) => {
                let Some(Instr::Const(c)) = out.pop() else {
                    unreachable!("guarded by matches!")
                };
                out.push(Instr::ArithConst(op, c));
            }
            Instr::Cmp(op) if matches!(out.last(), Some(Instr::Const(_))) => {
                let Some(Instr::Const(c)) = out.pop() else {
                    unreachable!("guarded by matches!")
                };
                out.push(Instr::CmpConst(op, c));
            }
            other => out.push(other),
        }
    }
    *prog = out;
}

/// Compile `e` into postfix instructions appended to `out`. Returns
/// `false` (leaving `out` in an unspecified state the caller discards)
/// if the expression contains anything but constants, parameters,
/// arithmetic, and comparisons. The instruction order is exactly the
/// left-to-right evaluation order of [`eval_scalar`], so every runtime
/// error (unbound parameter, division by zero, type error) surfaces at
/// the same point with the same rendering.
fn compile_flat(e: &ScalarExpr, out: &mut Vec<Instr>) -> bool {
    match e {
        ScalarExpr::Const(v) => {
            out.push(Instr::Const(v.clone()));
            true
        }
        ScalarExpr::Param(i) => {
            out.push(Instr::Param(*i));
            true
        }
        ScalarExpr::Arith(op, l, r) => {
            compile_flat(l, out) && compile_flat(r, out) && {
                out.push(Instr::Arith(*op));
                true
            }
        }
        ScalarExpr::Cmp(op, l, r) => {
            compile_flat(l, out) && compile_flat(r, out) && {
                out.push(Instr::Cmp(*op));
                true
            }
        }
        _ => false,
    }
}

/// Run a flat check program against a binding. `stack` is caller-owned
/// scratch space (cleared here) so repeated checks share one allocation.
fn eval_flat(prog: &[Instr], params: &[Value], stack: &mut Vec<Value>) -> Result<Value> {
    stack.clear();
    for ins in prog {
        match ins {
            Instr::Const(v) => stack.push(v.clone()),
            Instr::Param(i) => match params.get(*i) {
                Some(v) => stack.push(v.clone()),
                None => return Err(AlgebraError::UnboundParam(*i)),
            },
            Instr::Arith(op) => {
                let r = stack.pop().expect("flat program is well-formed");
                let l = stack.pop().expect("flat program is well-formed");
                stack.push(eval_arith(*op, &l, &r)?);
            }
            Instr::Cmp(op) => {
                let r = stack.pop().expect("flat program is well-formed");
                let l = stack.pop().expect("flat program is well-formed");
                stack.push(Value::Bool(op.test(l.compare(&r))));
            }
            Instr::ArithConst(op, c) => {
                let l = stack.pop().expect("flat program is well-formed");
                stack.push(eval_arith(*op, &l, c)?);
            }
            Instr::CmpConst(op, c) => {
                let l = stack.pop().expect("flat program is well-formed");
                stack.push(Value::Bool(op.test(l.compare(c))));
            }
        }
    }
    Ok(stack.pop().expect("flat program is well-formed"))
}

/// `Some(n)` if every expression in `row` is a bare constant or
/// parameter — evaluation then cannot fail once `n` parameters are
/// bound. `None` for any composite expression (arithmetic can divide by
/// zero, so it must actually run).
fn infallible_row_params(row: &[ScalarExpr]) -> Option<usize> {
    let mut need = 0;
    for e in row {
        match e {
            ScalarExpr::Const(_) => {}
            ScalarExpr::Param(i) => need = need.max(i + 1),
            _ => return None,
        }
    }
    Some(need)
}

/// Recognize a transaction as a fast-path plan: every statement must be a
/// grounded singleton insert/delete into a base relation, or an `alarm`
/// over `select[p](⟨row⟩)` / `antijoin[p](⟨row⟩, S)` with an
/// aggregate-free predicate — exactly the shapes ModT's prepare-time
/// specializer emits. Anything else (temporaries, updates, auxiliary
/// references, multi-row sources, aggregates) returns `None` and the plan
/// executes generically. The fast execution is *observably identical* to
/// the generic one for every recognized plan — same outcome, same
/// statistics, same abort renderings — which the equivalence tests below
/// and the specialization-soundness suite pin down.
fn recognize_fast(tx: &Transaction) -> Option<Vec<FastOp>> {
    let program = tx.debracket();
    let mut ops = Vec::with_capacity(program.len());
    for stmt in program.statements() {
        let op = match stmt {
            Statement::Insert {
                relation,
                source: RelExpr::Singleton(row),
            } if !auxiliary::is_auxiliary(relation) && row.iter().all(grounded) => FastOp::Insert {
                relation: relation.clone(),
                row: row.clone(),
            },
            Statement::Delete {
                relation,
                source: RelExpr::Singleton(row),
            } if !auxiliary::is_auxiliary(relation) && row.iter().all(grounded) => FastOp::Delete {
                relation: relation.clone(),
                row: row.clone(),
            },
            Statement::Alarm(expr) => recognize_alarm(expr)?,
            _ => return None,
        };
        ops.push(op);
    }
    Some(ops)
}

/// Recognize one `alarm` argument as a point check ([`FastOp::Check`]) or
/// point probe ([`FastOp::Probe`]).
fn recognize_alarm(expr: &RelExpr) -> Option<FastOp> {
    match expr {
        RelExpr::Select(input, pred) => {
            let RelExpr::Singleton(row) = input.as_ref() else {
                return None;
            };
            if !row.iter().all(grounded) || pred.has_aggregates() {
                return None;
            }
            // A column past the row would error generically; leave it to
            // the generic path rather than replicating the error.
            if pred.max_col().is_some_and(|m| m >= row.len()) {
                return None;
            }
            let check = pred.substitute_cols(row);
            let flat = {
                let mut prog = Vec::new();
                compile_flat(&check, &mut prog).then(|| {
                    fuse_flat(&mut prog);
                    prog
                })
            };
            Some(FastOp::Check {
                row: row.clone(),
                row_params: infallible_row_params(row),
                check,
                flat,
                pred_text: pred.to_string(),
                alarm_text: expr.to_string(),
            })
        }
        RelExpr::AntiJoin(l, r, pred) => {
            let RelExpr::Singleton(row) = l.as_ref() else {
                return None;
            };
            let RelExpr::Rel(name) = r.as_ref() else {
                return None;
            };
            if auxiliary::is_auxiliary(name) || !row.iter().all(grounded) || pred.has_aggregates() {
                return None;
            }
            let (pairs, residual) = probe_keys(pred, row.len());
            let full_key = residual.is_none() && !pairs.is_empty() && distinct_right(&pairs);
            Some(FastOp::Probe {
                row: row.clone(),
                row_params: infallible_row_params(row),
                relation: name.clone(),
                pairs,
                full_key,
                residual,
                pred: pred.clone(),
                alarm_text: expr.to_string(),
            })
        }
        _ => None,
    }
}

/// Decompose a probe predicate into `(row column, S column)` equality
/// pairs plus a residual conjunction — [`crate::keys::extract_equi_keys`]
/// with the right arity open, since S's arity is only known at execution
/// time. Pairs whose S offset turns out to be out of range force the
/// whole execution onto the generic path (see [`Executor::execute_plan`]),
/// which reports the range error exactly as before.
fn probe_keys(pred: &ScalarExpr, row_arity: usize) -> (Vec<(usize, usize)>, Option<ScalarExpr>) {
    fn flatten<'e>(e: &'e ScalarExpr, out: &mut Vec<&'e ScalarExpr>) {
        if let ScalarExpr::And(l, r) = e {
            flatten(l, out);
            flatten(r, out);
        } else {
            out.push(e);
        }
    }
    let mut conjuncts = Vec::new();
    flatten(pred, &mut conjuncts);
    let mut pairs = Vec::new();
    let mut residual: Option<ScalarExpr> = None;
    for c in conjuncts {
        let pair = if let ScalarExpr::Cmp(CmpOp::Eq, l, r) = c {
            match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(a), ScalarExpr::Col(b)) if *a < row_arity && *b >= row_arity => {
                    Some((*a, *b - row_arity))
                }
                (ScalarExpr::Col(b), ScalarExpr::Col(a)) if *a < row_arity && *b >= row_arity => {
                    Some((*a, *b - row_arity))
                }
                _ => None,
            }
        } else {
            None
        };
        match pair {
            Some(p) => pairs.push(p),
            None => {
                residual = Some(match residual {
                    None => c.clone(),
                    Some(acc) => ScalarExpr::and(acc, c.clone()),
                });
            }
        }
    }
    (pairs, residual)
}

/// The [`EvalContext`] of the fast path: a parameter binding and nothing
/// else. Every expression the fast path evaluates is aggregate-free (by
/// [`recognize_fast`]'s gates), so relation access is unreachable.
struct ParamsCtx<'a> {
    params: &'a [Value],
}

impl SchemaView for ParamsCtx<'_> {
    fn schema_of(&self, name: &str) -> Result<Arc<RelationSchema>> {
        Err(AlgebraError::Internal(format!(
            "fast path evaluated a relation-bearing expression (`{name}`)"
        )))
    }
}

impl EvalContext for ParamsCtx<'_> {
    fn relation_state(&self, name: &str) -> Result<&Relation> {
        Err(AlgebraError::Internal(format!(
            "fast path evaluated a relation-bearing expression (`{name}`)"
        )))
    }

    fn param(&self, i: usize) -> Option<&Value> {
        self.params.get(i)
    }
}

/// Check every probe's compile-time key pairs against the live arity of
/// its relation. `false` sends the execution to the generic path — either
/// the predicate references columns past the relation (the generic path
/// owns that error's rendering) or the relation is missing. Relation
/// arities cannot change mid-transaction (fast plans only move rows), so
/// one check up front covers the whole run.
fn fast_probes_valid(db: &Database, ops: &[FastOp]) -> bool {
    ops.iter().all(|op| match op {
        FastOp::Probe {
            relation, pairs, ..
        } => match db.relation(relation) {
            Ok(s) => {
                let arity = s.schema().arity();
                pairs.iter().all(|&(_, j)| j < arity)
            }
            Err(_) => false,
        },
        _ => true,
    })
}

/// Does `row` have a partner in `s` under the probe's predicate? The
/// decision procedure mirrors the generic hash anti-join exactly:
///
/// * **all of `s`'s columns are keyed, no residual** — one set lookup; a
///   hit is definitive (tuple equality implies key equality), and a miss
///   is definitive unless a key value is numeric (`Int(1)` and
///   `Double(1.0)` compare equal but are distinct set elements), in which
///   case the scan below re-decides;
/// * **some key pairs** — scan `s`, matching keys with
///   [`key_values_match`] (the hash path's verification) and evaluating
///   only the residual per key match;
/// * **no key pairs** — scan `s` evaluating the full predicate over the
///   concatenated tuple, the nested-loop semantics.
///
/// The scans are O(|S|) where the generic path is O(|S|) *per execution
/// anyway* (it clones `S` out of `Rel` before joining); the point-probe
/// win is the first case, which every translator-emitted foreign-key
/// check hits.
fn probe_matches(
    row: &Tuple,
    s: &Relation,
    pairs: &[(usize, usize)],
    residual: Option<&ScalarExpr>,
    pred: &ScalarExpr,
    ctx: &ParamsCtx<'_>,
) -> Result<bool> {
    let arity = s.schema().arity();
    if !pairs.is_empty() {
        if residual.is_none() && pairs.len() == arity && distinct_right(pairs) {
            let mut key = vec![Value::Null; arity];
            for &(i, j) in pairs {
                key[j] = row.get(i).cloned().expect("pair row offsets in range");
            }
            let numeric = key
                .iter()
                .any(|v| matches!(v, Value::Int(_) | Value::Double(_)));
            let key = Tuple::from_values(key);
            if s.contains(&key) {
                return Ok(true);
            }
            if !numeric {
                return Ok(false);
            }
            // A numeric key can still compare-match a cross-type partner
            // the typed set lookup misses; fall through to the scan.
        }
        for t in s.iter() {
            if !key_values_match(row, t, pairs) {
                continue;
            }
            match residual {
                None => return Ok(true),
                Some(res) => {
                    let joined = row.concat(t);
                    let v = eval_scalar(res, &joined, ctx)?;
                    if v.as_bool()
                        .ok_or_else(|| AlgebraError::NotABoolean(res.to_string()))?
                    {
                        return Ok(true);
                    }
                }
            }
        }
        return Ok(false);
    }
    for t in s.iter() {
        let joined = row.concat(t);
        let v = eval_scalar(pred, &joined, ctx)?;
        if v.as_bool()
            .ok_or_else(|| AlgebraError::NotABoolean(pred.to_string()))?
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Build a full-key probe's lookup key in place, straight from the bound
/// parameters — the direct path of [`FastOp::Probe`], reached only when
/// the row is infallible (`row_params`), so every keyed row expression is
/// a constant or a bound parameter. Returns whether any key value is
/// numeric (the set-lookup miss caveat of [`probe_matches`]); `None`
/// defers to the generic path.
fn direct_key(
    row: &[ScalarExpr],
    pairs: &[(usize, usize)],
    params: &[Value],
    arity: usize,
    key: &mut Vec<Value>,
) -> Option<bool> {
    key.clear();
    key.resize(arity, Value::Null);
    let mut numeric = false;
    for &(i, j) in pairs {
        let v = match row.get(i)? {
            ScalarExpr::Const(v) => v.clone(),
            ScalarExpr::Param(p) => params.get(*p)?.clone(),
            _ => return None,
        };
        numeric |= matches!(v, Value::Int(_) | Value::Double(_));
        *key.get_mut(j)? = v;
    }
    Some(numeric)
}

/// Whether the S-side offsets of the key pairs are pairwise distinct —
/// required for the full-key set lookup (duplicate offsets mean two row
/// columns constrain the same S column; only the scan checks both).
fn distinct_right(pairs: &[(usize, usize)]) -> bool {
    pairs
        .iter()
        .all(|&(_, j)| pairs.iter().filter(|&&(_, k)| k == j).count() == 1)
}

/// Apply the inverse of a recorded net delta to `rel`: remove the `R@ins`
/// tuples, re-insert the `R@del` tuples (the two sets are disjoint by the
/// differential invariants). The one definition behind both
/// [`TxContext::rollback`] and the `R@pre` reconstruction — they must
/// never drift apart.
fn apply_inverse_delta(rel: &mut Relation, ins: Option<&Relation>, del: Option<&Relation>) {
    if let Some(ins) = ins {
        for t in ins.iter() {
            rel.remove(t);
        }
    }
    if let Some(del) = del {
        for t in del.iter() {
            rel.insert_unchecked(t.clone());
        }
    }
}

impl SchemaView for TxContext<'_> {
    fn schema_of(&self, name: &str) -> Result<Arc<RelationSchema>> {
        if let Some(t) = self.temps.get(name) {
            return Ok(t.schema().clone());
        }
        if let Some((base, _)) = auxiliary::parse_auxiliary(name) {
            return Ok(self.working.relation(base)?.schema().clone());
        }
        Ok(self.working.relation(name)?.schema().clone())
    }
}

impl EvalContext for TxContext<'_> {
    fn relation_state(&self, name: &str) -> Result<&Relation> {
        if let Some(t) = self.temps.get(name) {
            return Ok(t);
        }
        if let Some((base, kind)) = auxiliary::parse_auxiliary(name) {
            // Ensure the base actually exists before answering aux reads.
            let _ = self.working.relation(base)?;
            // Auxiliary entries are allocated lazily; every name an
            // expression can resolve was materialized by
            // `ensure_differentials` before its statement started (the
            // same walk `evaluate` performs), so absence here is a bug in
            // that pre-pass. It surfaces as an abortable error — the
            // transaction rolls back through the normal path — rather
            // than a panic with the database mid-mutation.
            let missing = || {
                AlgebraError::Internal(format!("auxiliary `{name}` read before materialization"))
            };
            return match kind {
                AuxKind::Pre => self.pre.get(base).ok_or_else(missing),
                AuxKind::Ins => self.ins.get(base).ok_or_else(missing),
                AuxKind::Del => self.del.get(base).ok_or_else(missing),
            };
        }
        Ok(self.working.relation(name)?)
    }

    fn param(&self, i: usize) -> Option<&Value> {
        self.params.get(i)
    }
}

/// Fold a fast-plan undo log into net per-relation redo records — the
/// fast-path miniature of [`TxContext::net_deltas`]. Each log entry is a
/// genuine state change at the moment it ran, so replaying the log with
/// insert/delete cancellation yields exactly the net `(R@ins, R@del)`
/// pair. Output is sorted by relation name and tuple order.
fn fold_undo_deltas(ops: &[FastOp], undo: &[(usize, Tuple, bool)]) -> Vec<RelationDelta> {
    use std::collections::BTreeMap;
    use std::collections::BTreeSet;
    // The prepared single-row hot path: one op, nothing to cancel or sort.
    if let [(idx, t, was_insert)] = undo {
        let (mut inserted, mut deleted) = (Vec::new(), Vec::new());
        if *was_insert {
            inserted.push(t.clone());
        } else {
            deleted.push(t.clone());
        }
        return vec![RelationDelta {
            relation: ops[*idx].write_target().to_owned(),
            inserted,
            deleted,
        }];
    }
    let mut per: BTreeMap<&str, (BTreeSet<Tuple>, BTreeSet<Tuple>)> = BTreeMap::new();
    for (idx, t, was_insert) in undo {
        let entry = per.entry(ops[*idx].write_target()).or_default();
        let (ins, del) = entry;
        if *was_insert {
            if !del.remove(t) {
                ins.insert(t.clone());
            }
        } else if !ins.remove(t) {
            del.insert(t.clone());
        }
    }
    per.into_iter()
        .filter(|(_, (ins, del))| !ins.is_empty() || !del.is_empty())
        .map(|(relation, (ins, del))| RelationDelta {
            relation: relation.to_owned(),
            inserted: ins.into_iter().collect(),
            deleted: del.into_iter().collect(),
        })
        .collect()
}

/// The transaction executor: runs bracketed programs against a database
/// with full atomicity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Execute `tx` against `db`, mutating it in place in O(Δ).
    ///
    /// On commit the working state (temporaries never enter it) is already
    /// installed and the logical time advances. On abort — alarm fired,
    /// explicit `abort`, or runtime error — the recorded changes are
    /// undone, leaving `db` set-identical to its pre-transaction state
    /// (the paper installs `D^t` as `D^{t+1}`; we advance the logical
    /// clock in both cases).
    pub fn execute(&self, db: &mut Database, tx: &Transaction) -> TxOutcome {
        self.execute_bound(db, tx, &[])
    }

    /// [`Executor::execute_bound`] that additionally returns the committed
    /// transaction's net per-relation differentials — the redo records the
    /// durability layer serializes into its WAL. The capture is harvested
    /// from the same `R@ins`/`R@del` maps that back rollback and `R@pre`,
    /// sorted by relation name and tuple order for deterministic bytes. An
    /// aborted transaction captures nothing (its net effect is empty by
    /// atomicity).
    pub fn execute_bound_capture(
        &self,
        db: &mut Database,
        tx: &Transaction,
        params: &[Value],
    ) -> (TxOutcome, Vec<RelationDelta>) {
        let mut deltas = Vec::new();
        let outcome = self.run(db, tx, params, None, Some(&mut deltas), None);
        (outcome, deltas)
    }

    /// [`Executor::execute_plan`] with differential capture — see
    /// [`Executor::execute_bound_capture`]. The fast path derives the same
    /// net records from its tuple-level undo log.
    pub fn execute_plan_capture(
        &self,
        db: &mut Database,
        plan: &ExecPlan,
        params: &[Value],
    ) -> (TxOutcome, Vec<RelationDelta>) {
        let mut deltas = Vec::new();
        let outcome = self.execute_plan_instrumented(db, plan, params, Some(&mut deltas), None);
        (outcome, deltas)
    }

    /// The fully optioned plan execution: differential capture and
    /// per-check wall-clock instrumentation, both opt-in. When `timings`
    /// is supplied, every check (`alarm` statement, or fast-path
    /// check/probe op) evaluated at or past `timings.first` appends its
    /// elapsed nanoseconds to `timings.ns` in execution order — including
    /// the check that aborts the transaction. The un-instrumented entry
    /// points never read the clock.
    pub fn execute_plan_instrumented(
        &self,
        db: &mut Database,
        plan: &ExecPlan,
        params: &[Value],
        capture: Option<&mut Vec<RelationDelta>>,
        timings: Option<&mut CheckTimings>,
    ) -> TxOutcome {
        if let Some(ops) = &plan.fast {
            if fast_probes_valid(db, ops) {
                return self.run_fast(db, ops, params, capture, timings);
            }
        }
        self.run(db, &plan.tx, params, Some(&plan.aux), capture, timings)
    }

    /// Execute a transaction template against a parameter binding:
    /// placeholder `?i` resolves to `params[i]`. A placeholder beyond the
    /// binding aborts the transaction with
    /// [`AlgebraError::UnboundParam`] — templates cannot half-execute.
    pub fn execute_bound(
        &self,
        db: &mut Database,
        tx: &Transaction,
        params: &[Value],
    ) -> TxOutcome {
        self.run(db, tx, params, None, None, None)
    }

    /// Execute a compiled [`ExecPlan`] against a parameter binding. Same
    /// semantics as [`Executor::execute_bound`] on the plan's template,
    /// but the per-statement analysis was paid once at compile time, and
    /// plans recognized by `recognize_fast` skip the [`TxContext`]
    /// machinery entirely: writes go straight to the live relations under
    /// a tuple-level undo log, checks evaluate as point probes.
    pub fn execute_plan(&self, db: &mut Database, plan: &ExecPlan, params: &[Value]) -> TxOutcome {
        if let Some(ops) = &plan.fast {
            if fast_probes_valid(db, ops) {
                return self.run_fast(db, ops, params, None, None);
            }
            // A probe's key columns fall outside its relation (or the
            // relation is missing): the generic path owns those error
            // renderings. Nothing has executed yet, so falling back is
            // observably free.
        }
        self.run(db, &plan.tx, params, Some(&plan.aux), None, None)
    }

    /// Run a recognized fast plan. Equivalent to the generic path on the
    /// same template — same outcome, statistics, and abort renderings —
    /// but O(1) per statement: no differential maps, no `R@pre`, no
    /// derived singleton schemas. Atomicity comes from a tuple-level undo
    /// log (the net change record, replayed in reverse on abort), the
    /// fast-path miniature of the generic inverse-delta rollback.
    fn run_fast(
        &self,
        db: &mut Database,
        ops: &[FastOp],
        params: &[Value],
        capture: Option<&mut Vec<RelationDelta>>,
        mut timings: Option<&mut CheckTimings>,
    ) -> TxOutcome {
        let ctx = ParamsCtx { params };
        let empty = Tuple::empty();
        let mut stats = ExecStats::default();
        // (op index, tuple, was_insert) — reversed on abort.
        let mut undo: Vec<(usize, Tuple, bool)> = Vec::new();
        // Operand stack reused across every flat check in the plan.
        let mut scratch: Vec<Value> = Vec::with_capacity(8);

        let eval_row = |row: &[ScalarExpr]| -> std::result::Result<Vec<Value>, AbortReason> {
            let mut values = Vec::with_capacity(row.len());
            for e in row {
                match eval_scalar(e, &empty, &ctx) {
                    Ok(v) => values.push(v),
                    Err(e) => return Err(AbortReason::RuntimeError(e)),
                }
            }
            Ok(values)
        };

        for (i, op) in ops.iter().enumerate() {
            stats.statements += 1;
            let clock = match (&timings, op) {
                (Some(t), FastOp::Check { .. } | FastOp::Probe { .. }) if i >= t.first => {
                    Some(Instant::now())
                }
                _ => None,
            };
            let step: std::result::Result<(), AbortReason> = match op {
                FastOp::Insert { relation, row } => {
                    eval_row(row).and_then(|values| {
                        let t = Tuple::from_values(values);
                        let res: Result<bool> = (|| {
                            db.relation(relation)?.schema().validate_tuple(&t)?;
                            Ok(db.relation_mut(relation)?.insert_unchecked(t.clone()))
                        })();
                        match res {
                            Ok(true) => {
                                stats.tuples_inserted += 1;
                                undo.push((i, t, true));
                                Ok(())
                            }
                            Ok(false) => Ok(()), // duplicate: no net change
                            Err(e) => Err(AbortReason::RuntimeError(e)),
                        }
                    })
                }
                FastOp::Delete { relation, row } => {
                    eval_row(row).and_then(|values| {
                        let t = Tuple::from_values(values);
                        let res: Result<bool> = (|| {
                            db.relation(relation)?.schema().validate_tuple(&t)?;
                            Ok(db.relation_mut(relation)?.remove(&t))
                        })();
                        match res {
                            Ok(true) => {
                                stats.tuples_deleted += 1;
                                undo.push((i, t, false));
                                Ok(())
                            }
                            Ok(false) => Ok(()), // absent: no net change
                            Err(e) => Err(AbortReason::RuntimeError(e)),
                        }
                    })
                }
                FastOp::Check {
                    row,
                    row_params,
                    check,
                    flat,
                    pred_text,
                    alarm_text,
                } => {
                    stats.alarms_evaluated += 1;
                    // The generic path evaluates the singleton's row first;
                    // keep its error ordering (e.g. an unbound parameter in
                    // the row surfaces before a predicate error). A row of
                    // constants and bound parameters cannot fail, so its
                    // (unused) values are not materialized at all.
                    let row_ok = match row_params {
                        Some(n) if params.len() >= *n => Ok(()),
                        _ => eval_row(row).map(drop),
                    };
                    row_ok.and_then(|_| {
                        let evaluated = match flat {
                            Some(prog) => eval_flat(prog, params, &mut scratch),
                            None => eval_scalar(check, &empty, &ctx),
                        };
                        let v = match evaluated {
                            Ok(v) => v,
                            Err(e) => return Err(AbortReason::RuntimeError(e)),
                        };
                        let violated = v.as_bool().ok_or_else(|| {
                            AbortReason::RuntimeError(AlgebraError::NotABoolean(pred_text.clone()))
                        })?;
                        if violated {
                            stats.alarms_fired += 1;
                            Err(AbortReason::AlarmFired {
                                expr: alarm_text.clone(),
                                violations: 1,
                            })
                        } else {
                            Ok(())
                        }
                    })
                }
                FastOp::Probe {
                    row,
                    row_params,
                    relation,
                    pairs,
                    full_key,
                    residual,
                    pred,
                    alarm_text,
                } => {
                    stats.alarms_evaluated += 1;
                    match db.relation(relation) {
                        Err(e) => Err(AbortReason::RuntimeError(e.into())),
                        Ok(s) => {
                            // Direct path: pure distinct key equalities
                            // covering all of S's columns, from an
                            // infallible row — decide by one borrowed set
                            // lookup. A numeric miss falls through
                            // (cross-type compare-matches, see
                            // `probe_matches`); a hit or non-numeric miss
                            // is definitive.
                            let direct = if *full_key
                                && matches!(row_params, Some(n) if params.len() >= *n)
                                && pairs.len() == s.schema().arity()
                            {
                                direct_key(row, pairs, params, pairs.len(), &mut scratch)
                                    .map(|numeric| (s.contains_row(&scratch), numeric))
                            } else {
                                None
                            };
                            match direct {
                                Some((true, _)) => Ok(()),
                                Some((false, false)) => {
                                    stats.alarms_fired += 1;
                                    Err(AbortReason::AlarmFired {
                                        expr: alarm_text.clone(),
                                        violations: 1,
                                    })
                                }
                                _ => eval_row(row).and_then(|values| {
                                    let t = Tuple::from_values(values);
                                    match probe_matches(&t, s, pairs, residual.as_ref(), pred, &ctx)
                                    {
                                        Ok(true) => Ok(()),
                                        Ok(false) => {
                                            stats.alarms_fired += 1;
                                            Err(AbortReason::AlarmFired {
                                                expr: alarm_text.clone(),
                                                violations: 1,
                                            })
                                        }
                                        Err(e) => Err(AbortReason::RuntimeError(e)),
                                    }
                                }),
                            }
                        }
                    }
                }
            };
            if let (Some(t0), Some(t)) = (clock, timings.as_deref_mut()) {
                t.ns.push(t0.elapsed().as_nanos() as u64);
            }
            if let Err(reason) = step {
                for (idx, t, was_insert) in undo.iter().rev() {
                    let rel = db
                        .relation_mut(ops[*idx].write_target())
                        .expect("undo targets a relation that existed at write time");
                    if *was_insert {
                        rel.remove(t);
                    } else {
                        rel.insert_unchecked(t.clone());
                    }
                }
                db.tick();
                return TxOutcome::Aborted { reason, stats };
            }
        }
        if let Some(out) = capture {
            *out = fold_undo_deltas(ops, &undo);
        }
        db.tick();
        TxOutcome::Committed(stats)
    }

    fn run(
        &self,
        db: &mut Database,
        tx: &Transaction,
        params: &[Value],
        aux: Option<&[Vec<(String, AuxKind)>]>,
        capture: Option<&mut Vec<RelationDelta>>,
        mut timings: Option<&mut CheckTimings>,
    ) -> TxOutcome {
        let program = tx.debracket();
        let mut ctx = TxContext::begin_bound(db, params);
        for (i, stmt) in program.statements().iter().enumerate() {
            let stmt_aux = aux.map(|a| a[i].as_slice());
            let clock = match (&timings, stmt) {
                (Some(t), Statement::Alarm(_)) if i >= t.first => Some(Instant::now()),
                _ => None,
            };
            let step = ctx.execute_statement(stmt, stmt_aux);
            if let (Some(t0), Some(t)) = (clock, timings.as_deref_mut()) {
                t.ns.push(t0.elapsed().as_nanos() as u64);
            }
            if let Err(reason) = step {
                ctx.rollback(); // undo the delta: re-install D^t as D^{t+1}
                let stats = ctx.stats.clone();
                db.tick();
                return TxOutcome::Aborted { reason, stats };
            }
        }
        // End bracket: temporaries die with the context, the mutated
        // working state is [D^{t,n}] — nothing to install, just tick.
        let stats = ctx.stats.clone();
        if let Some(out) = capture {
            *out = ctx.net_deltas();
        }
        drop(ctx);
        db.tick();
        TxOutcome::Committed(stats)
    }

    /// Execute and also return the transition `(D^t, D^{t+1})` for
    /// transition-constraint checking by callers (ground-truth tests).
    pub fn execute_with_transition(
        &self,
        db: &mut Database,
        tx: &Transaction,
    ) -> (TxOutcome, tm_relational::Transition) {
        let before = db.clone();
        let outcome = self.execute(db, tx);
        let transition = tm_relational::Transition::new(before, db.clone());
        (outcome, transition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, ScalarExpr};
    use crate::program::Program;
    use crate::rel_expr::RelExpr;
    use tm_relational::{DatabaseSchema, RelationSchema, ValueType};

    fn db() -> Database {
        let schema = DatabaseSchema::from_relations(vec![
            RelationSchema::of("r", &[("a", ValueType::Int), ("b", ValueType::Str)]),
            RelationSchema::of("s", &[("x", ValueType::Int)]),
        ])
        .unwrap();
        let mut db = Database::new(schema.into_shared());
        db.insert("r", Tuple::of((1, "one"))).unwrap();
        db.insert("s", Tuple::of((10,))).unwrap();
        db
    }

    fn exec(db: &mut Database, stmts: Vec<Statement>) -> TxOutcome {
        Executor.execute(db, &Program::new(stmts).bracket())
    }

    #[test]
    fn commit_installs_changes() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![Statement::insert_tuples("r", vec![Tuple::of((2, "two"))])],
        );
        assert!(out.is_committed());
        assert_eq!(d.relation("r").unwrap().len(), 2);
        assert_eq!(d.logical_time(), 1);
        assert_eq!(out.stats().tuples_inserted, 1);
    }

    #[test]
    fn abort_restores_state() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::insert_tuples("r", vec![Tuple::of((2, "two"))]),
                Statement::Abort,
            ],
        );
        assert!(!out.is_committed());
        assert_eq!(d.relation("r").unwrap().len(), 1);
        assert_eq!(d.logical_time(), 1); // time still advances
    }

    #[test]
    fn alarm_empty_is_noop() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![Statement::Alarm(
                RelExpr::relation("r").select(ScalarExpr::false_()),
            )],
        );
        assert!(out.is_committed());
        assert_eq!(out.stats().alarms_evaluated, 1);
        assert_eq!(out.stats().alarms_fired, 0);
    }

    #[test]
    fn alarm_nonempty_aborts() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::insert_tuples("r", vec![Tuple::of((2, "two"))]),
                Statement::Alarm(RelExpr::relation("r")),
            ],
        );
        match out {
            TxOutcome::Aborted {
                reason: AbortReason::AlarmFired { violations, .. },
                stats,
            } => {
                assert_eq!(violations, 2);
                assert_eq!(stats.alarms_fired, 1);
            }
            other => panic!("expected alarm abort, got {other:?}"),
        }
        assert_eq!(d.relation("r").unwrap().len(), 1);
    }

    #[test]
    fn temporaries_are_dropped_on_commit() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::Assign {
                    target: "temp".into(),
                    expr: RelExpr::relation("r"),
                },
                Statement::Insert {
                    relation: "r".into(),
                    source: RelExpr::relation("temp").project(vec![
                        ScalarExpr::arith(
                            crate::expr::ArithOp::Add,
                            ScalarExpr::col(0),
                            ScalarExpr::int(100),
                        ),
                        ScalarExpr::col(1),
                    ]),
                },
            ],
        );
        assert!(out.is_committed());
        assert!(d.relation("r").unwrap().contains(&Tuple::of((101, "one"))));
        // temp does not survive the transaction
        assert!(d.relation("temp").is_err());
    }

    #[test]
    fn assign_to_base_is_error() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![Statement::Assign {
                target: "r".into(),
                expr: RelExpr::relation("s"),
            }],
        );
        assert!(matches!(
            out,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::AssignToBase(_)),
                ..
            }
        ));
    }

    #[test]
    fn auxiliary_relations_read_only() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![Statement::insert_tuples("r@ins", vec![Tuple::of((1, "x"))])],
        );
        assert!(matches!(
            out,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::AuxiliaryUpdate(_)),
                ..
            }
        ));
    }

    #[test]
    fn pre_state_visible_during_transaction() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::delete_where("r", ScalarExpr::true_()),
                // r is now empty, but r@pre still holds the old tuple;
                // alarm(r@pre − r@pre) must not fire while alarm on the
                // difference of r@pre and r fires on 1 tuple? No —
                // we assert commit by alarming on an empty difference.
                Statement::Alarm(RelExpr::relation("r@pre").difference(RelExpr::relation("r@pre"))),
                Statement::insert_tuples("r", vec![Tuple::of((5, "five"))]),
            ],
        );
        assert!(out.is_committed());
        assert_eq!(d.relation("r").unwrap().len(), 1);
        assert!(d.relation("r").unwrap().contains(&Tuple::of((5, "five"))));
    }

    #[test]
    fn differentials_track_net_changes() {
        let mut d = db();
        // Insert then delete the same tuple: net differentials are empty.
        let out = exec(
            &mut d,
            vec![
                Statement::insert_tuples("r", vec![Tuple::of((2, "two"))]),
                Statement::Delete {
                    relation: "r".into(),
                    source: RelExpr::Literal(vec![Tuple::of((2, "two"))]),
                },
                Statement::Alarm(RelExpr::relation("r@ins")),
                Statement::Alarm(RelExpr::relation("r@del")),
            ],
        );
        assert!(
            out.is_committed(),
            "net-zero change must not alarm: {out:?}"
        );
    }

    #[test]
    fn differential_delete_then_insert_cancels() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::Delete {
                    relation: "r".into(),
                    source: RelExpr::Literal(vec![Tuple::of((1, "one"))]),
                },
                Statement::insert_tuples("r", vec![Tuple::of((1, "one"))]),
                Statement::Alarm(RelExpr::relation("r@ins")),
                Statement::Alarm(RelExpr::relation("r@del")),
            ],
        );
        assert!(out.is_committed(), "{out:?}");
    }

    #[test]
    fn differential_ins_visible() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::insert_tuples("r", vec![Tuple::of((2, "two"))]),
                // r@ins = {(2,two)} — alarm fires.
                Statement::Alarm(RelExpr::relation("r@ins")),
            ],
        );
        match out {
            TxOutcome::Aborted {
                reason: AbortReason::AlarmFired { violations, .. },
                ..
            } => assert_eq!(violations, 1),
            other => panic!("expected alarm, got {other:?}"),
        }
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![Statement::Update {
                relation: "s".into(),
                pred: ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(10)),
                set: vec![crate::program::UpdateAssignment::new(
                    0,
                    ScalarExpr::arith(
                        crate::expr::ArithOp::Add,
                        ScalarExpr::col(0),
                        ScalarExpr::int(1),
                    ),
                )],
            }],
        );
        assert!(out.is_committed());
        assert!(d.relation("s").unwrap().contains(&Tuple::of((11,))));
        assert!(!d.relation("s").unwrap().contains(&Tuple::of((10,))));
        assert_eq!(out.stats().tuples_inserted, 1);
        assert_eq!(out.stats().tuples_deleted, 1);
    }

    #[test]
    fn runtime_error_aborts_atomically() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![
                Statement::insert_tuples("r", vec![Tuple::of((2, "two"))]),
                Statement::Insert {
                    relation: "nonexistent".into(),
                    source: RelExpr::relation("r"),
                },
            ],
        );
        assert!(!out.is_committed());
        assert_eq!(d.relation("r").unwrap().len(), 1);
    }

    #[test]
    fn insert_validates_against_base_schema() {
        let mut d = db();
        let out = exec(
            &mut d,
            vec![Statement::insert_tuples("s", vec![Tuple::of(("wrong",))])],
        );
        assert!(matches!(
            out,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::Relational(_)),
                ..
            }
        ));
    }

    #[test]
    fn unbound_param_aborts_atomically() {
        let mut d = db();
        let tx = Program::new(vec![
            Statement::insert_tuples("r", vec![Tuple::of((2, "two"))]),
            Statement::insert_params("s", 1),
        ])
        .bracket();
        let out = Executor.execute(&mut d, &tx);
        assert!(matches!(
            out,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::UnboundParam(0)),
                ..
            }
        ));
        assert_eq!(d.relation("r").unwrap().len(), 1, "rolled back");
    }

    #[test]
    fn execute_bound_resolves_params() {
        let mut d = db();
        let tx = Program::new(vec![Statement::insert_params("r", 2)]).bracket();
        let out = Executor.execute_bound(
            &mut d,
            &tx,
            &[
                tm_relational::Value::Int(9),
                tm_relational::Value::str("nine"),
            ],
        );
        assert!(out.is_committed(), "{out:?}");
        assert!(d.relation("r").unwrap().contains(&Tuple::of((9, "nine"))));
    }

    #[test]
    fn bound_param_types_flow_into_derived_schemas() {
        // `project[…, ?0]` of a string parameter must produce a Str
        // column, exactly as the substituted-constant form would —
        // otherwise the derived schema mistypes the projected value and
        // insertion into the (Int, Str) base relation misvalidates.
        let mut d = db();
        let tx = Program::new(vec![Statement::Insert {
            relation: "r".into(),
            source: RelExpr::relation("r").project(vec![
                ScalarExpr::arith(
                    crate::expr::ArithOp::Add,
                    ScalarExpr::col(0),
                    ScalarExpr::int(1),
                ),
                ScalarExpr::param(0),
            ]),
        }])
        .bracket();
        let params = [tm_relational::Value::str("p")];
        let out = Executor.execute_bound(&mut d, &tx, &params);
        assert!(out.is_committed(), "{out:?}");
        assert!(d.relation("r").unwrap().contains(&Tuple::of((2, "p"))));
        // And the substituted form agrees.
        let mut d2 = db();
        let out2 = Executor.execute(&mut d2, &tx.bind_params(&params));
        assert!(out2.is_committed(), "{out2:?}");
        assert!(d.state_eq(&d2));
    }

    #[test]
    fn exec_plan_matches_direct_execution() {
        let tx = Program::new(vec![
            Statement::insert_params("r", 2),
            // Mentions auxiliaries, so the plan caches non-trivial refs.
            Statement::Alarm(RelExpr::relation("r@ins").difference(RelExpr::relation("r@ins"))),
            Statement::Alarm(RelExpr::relation("r@pre").select(ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::col(0),
                ScalarExpr::param(0),
            ))),
        ])
        .bracket();
        let plan = ExecPlan::compile(tx.clone());
        assert_eq!(plan.param_count(), 2);
        assert_eq!(plan.transaction(), &tx);
        let params = [tm_relational::Value::Int(3), tm_relational::Value::str("x")];

        let mut via_plan = db();
        let out_plan = Executor.execute_plan(&mut via_plan, &plan, &params);
        let mut direct = db();
        let out_direct = Executor.execute_bound(&mut direct, &tx, &params);
        assert_eq!(out_plan, out_direct);
        assert!(via_plan.state_eq(&direct));
        assert!(out_plan.is_committed(), "{out_plan:?}");
    }

    /// Execute `tx` through its (fast) plan and through the generic
    /// interpreter on twin databases; the outcomes and final states must
    /// be indistinguishable. Returns the plan outcome.
    fn assert_fast_equals_generic(
        mk: impl Fn() -> Database,
        tx: &Transaction,
        params: &[Value],
    ) -> TxOutcome {
        let plan = ExecPlan::compile(tx.clone());
        assert!(plan.is_fast(), "plan unexpectedly generic: {tx}");
        let mut via_plan = mk();
        let out_plan = Executor.execute_plan(&mut via_plan, &plan, params);
        let mut generic = mk();
        let out_generic = Executor.run(&mut generic, tx, params, None, None, None);
        assert_eq!(out_plan, out_generic, "outcome diverged for {tx}");
        assert!(via_plan.state_eq(&generic), "state diverged for {tx}");
        assert_eq!(via_plan.logical_time(), generic.logical_time());
        out_plan
    }

    fn singleton(values: Vec<ScalarExpr>) -> RelExpr {
        RelExpr::Singleton(values)
    }

    #[test]
    fn fast_plan_recognizes_specialized_shapes() {
        // Grounded singleton writes + point check + point probe: fast.
        let tx = Program::new(vec![
            Statement::Insert {
                relation: "r".into(),
                source: singleton(vec![ScalarExpr::param(0), ScalarExpr::param(1)]),
            },
            Statement::Alarm(
                singleton(vec![ScalarExpr::param(0)]).select(ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(0),
                    ScalarExpr::int(0),
                )),
            ),
            Statement::Alarm(
                singleton(vec![ScalarExpr::param(0)])
                    .anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 1)),
            ),
        ])
        .bracket();
        assert!(ExecPlan::compile(tx).is_fast());

        // Any other statement shape falls back to the generic path.
        for tx in [
            Program::new(vec![Statement::insert_tuples(
                "r@ins",
                vec![Tuple::of((1, "x"))],
            )]),
            Program::new(vec![Statement::Insert {
                relation: "r".into(),
                source: RelExpr::relation("s"),
            }]),
            Program::new(vec![Statement::Alarm(RelExpr::relation("r"))]),
            Program::new(vec![Statement::Abort]),
            Program::new(vec![Statement::Alarm(
                singleton(vec![ScalarExpr::param(0)]).select(ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::Cnt(Box::new(RelExpr::relation("s"))),
                    ScalarExpr::int(0),
                )),
            )]),
        ] {
            assert!(
                !ExecPlan::compile(tx.clone().bracket()).is_fast(),
                "unexpectedly fast: {tx}"
            );
        }
    }

    #[test]
    fn fast_path_commit_and_duplicate_insert() {
        let tx = Program::new(vec![
            Statement::Insert {
                relation: "r".into(),
                source: singleton(vec![ScalarExpr::param(0), ScalarExpr::param(1)]),
            },
            // Duplicate of the first insert: no net change, still counted
            // as a statement.
            Statement::Insert {
                relation: "r".into(),
                source: singleton(vec![ScalarExpr::param(0), ScalarExpr::param(1)]),
            },
        ])
        .bracket();
        let params = [Value::Int(7), Value::str("seven")];
        let out = assert_fast_equals_generic(db, &tx, &params);
        assert!(out.is_committed());
        assert_eq!(out.stats().tuples_inserted, 1);
        assert_eq!(out.stats().statements, 2);
    }

    #[test]
    fn fast_path_check_fires_and_rolls_back() {
        let tx = Program::new(vec![
            Statement::Insert {
                relation: "s".into(),
                source: singleton(vec![ScalarExpr::param(0)]),
            },
            Statement::Alarm(
                singleton(vec![ScalarExpr::param(0)]).select(ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(0),
                    ScalarExpr::int(0),
                )),
            ),
        ])
        .bracket();
        // Clean value commits…
        let ok = assert_fast_equals_generic(db, &tx, &[Value::Int(5)]);
        assert!(ok.is_committed());
        // …violating value fires the alarm and rolls the insert back.
        let bad = assert_fast_equals_generic(db, &tx, &[Value::Int(-5)]);
        match bad {
            TxOutcome::Aborted {
                reason: AbortReason::AlarmFired { expr, violations },
                stats,
            } => {
                assert_eq!(violations, 1);
                assert!(expr.contains("select"), "generic rendering: {expr}");
                assert_eq!(stats.alarms_fired, 1);
            }
            other => panic!("expected alarm abort, got {other:?}"),
        }
    }

    #[test]
    fn fast_path_probe_hit_and_miss() {
        // Referential probe: ⟨?0⟩ must have a partner in s (arity 1), so
        // the pair covers all of s's columns — the set-lookup path.
        let tx = Program::new(vec![Statement::Alarm(
            singleton(vec![ScalarExpr::param(0)])
                .anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 1)),
        )])
        .bracket();
        let hit = assert_fast_equals_generic(db, &tx, &[Value::Int(10)]);
        assert!(hit.is_committed(), "{hit:?}");
        let miss = assert_fast_equals_generic(db, &tx, &[Value::Int(11)]);
        assert!(!miss.is_committed());
    }

    #[test]
    fn fast_path_probe_matches_numeric_cross_type() {
        // s holds Int(10); a Double(10.0) probe key misses the typed set
        // lookup but must still match under `compare`, exactly as the
        // generic hash join does.
        let tx = Program::new(vec![Statement::Alarm(
            singleton(vec![ScalarExpr::param(0)])
                .anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 1)),
        )])
        .bracket();
        let out = assert_fast_equals_generic(db, &tx, &[Value::double(10.0)]);
        assert!(out.is_committed(), "{out:?}");
        let out = assert_fast_equals_generic(db, &tx, &[Value::double(10.5)]);
        assert!(!out.is_committed());
    }

    #[test]
    fn fast_path_probe_with_residual_and_without_keys() {
        // Residual probe: equality key plus an inequality conjunct.
        let with_residual = Program::new(vec![Statement::Alarm(
            singleton(vec![ScalarExpr::param(0), ScalarExpr::param(1)]).anti_join(
                RelExpr::relation("r"),
                ScalarExpr::and(
                    ScalarExpr::col_eq(0, 2),
                    ScalarExpr::cmp(CmpOp::Le, ScalarExpr::col(1), ScalarExpr::col(2)),
                ),
            ),
        )])
        .bracket();
        let out = assert_fast_equals_generic(db, &with_residual, &[Value::Int(1), Value::Int(0)]);
        assert!(out.is_committed(), "{out:?}");
        let out = assert_fast_equals_generic(db, &with_residual, &[Value::Int(1), Value::Int(2)]);
        assert!(!out.is_committed());

        // Keyless probe: pure inequality predicate, full scan semantics.
        let keyless = Program::new(vec![Statement::Alarm(
            singleton(vec![ScalarExpr::param(0)]).anti_join(
                RelExpr::relation("s"),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1)),
            ),
        )])
        .bracket();
        let out = assert_fast_equals_generic(db, &keyless, &[Value::Int(3)]);
        assert!(out.is_committed(), "{out:?}");
        let out = assert_fast_equals_generic(db, &keyless, &[Value::Int(30)]);
        assert!(!out.is_committed());
    }

    #[test]
    fn fast_path_probe_out_of_range_falls_back() {
        // The probe's key references column 5 of the concat, but s has
        // arity 1 (concat arity 2): the fast plan detects the mismatch at
        // execution and the generic path reports its usual range error.
        let tx = Program::new(vec![Statement::Alarm(
            singleton(vec![ScalarExpr::param(0)])
                .anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 5)),
        )])
        .bracket();
        let plan = ExecPlan::compile(tx.clone());
        assert!(plan.is_fast());
        let mut via_plan = db();
        let out_plan = Executor.execute_plan(&mut via_plan, &plan, &[Value::Int(1)]);
        let mut generic = db();
        let out_generic = Executor.execute_bound(&mut generic, &tx, &[Value::Int(1)]);
        assert_eq!(out_plan, out_generic);
        assert!(matches!(
            out_plan,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::ColumnOutOfRange { .. }),
                ..
            }
        ));
    }

    #[test]
    fn fast_path_unbound_param_and_validation_errors() {
        // Unbound parameter in the row aborts atomically.
        let tx = Program::new(vec![
            Statement::Insert {
                relation: "s".into(),
                source: singleton(vec![ScalarExpr::int(42)]),
            },
            Statement::Insert {
                relation: "s".into(),
                source: singleton(vec![ScalarExpr::param(0)]),
            },
        ])
        .bracket();
        let out = assert_fast_equals_generic(db, &tx, &[]);
        assert!(matches!(
            out,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::UnboundParam(0)),
                ..
            }
        ));

        // Type mismatch against the base schema aborts atomically.
        let tx = Program::new(vec![
            Statement::Insert {
                relation: "s".into(),
                source: singleton(vec![ScalarExpr::int(42)]),
            },
            Statement::Insert {
                relation: "s".into(),
                source: singleton(vec![ScalarExpr::str("wrong")]),
            },
        ])
        .bracket();
        let out = assert_fast_equals_generic(db, &tx, &[]);
        assert!(matches!(
            out,
            TxOutcome::Aborted {
                reason: AbortReason::RuntimeError(AlgebraError::Relational(_)),
                ..
            }
        ));
    }

    #[test]
    fn fast_path_delete_then_failing_probe_restores_state() {
        // Delete a row, then probe for it — the probe misses (the delete
        // already happened), the alarm fires, and rollback restores the
        // deleted tuple.
        let tx = Program::new(vec![
            Statement::Delete {
                relation: "s".into(),
                source: singleton(vec![ScalarExpr::param(0)]),
            },
            Statement::Alarm(
                singleton(vec![ScalarExpr::param(0)])
                    .anti_join(RelExpr::relation("s"), ScalarExpr::col_eq(0, 1)),
            ),
        ])
        .bracket();
        let out = assert_fast_equals_generic(db, &tx, &[Value::Int(10)]);
        assert!(!out.is_committed());
        let mut d = db();
        let plan = ExecPlan::compile(tx);
        Executor.execute_plan(&mut d, &plan, &[Value::Int(10)]);
        assert!(d.relation("s").unwrap().contains(&Tuple::of((10,))));
    }

    #[test]
    fn statement_aux_refs_finds_only_auxiliaries() {
        let stmt = Statement::Alarm(
            RelExpr::relation("r@pre")
                .union(RelExpr::relation("r"))
                .union(RelExpr::relation("s@del")),
        );
        let refs = statement_aux_refs(&stmt);
        assert_eq!(
            refs,
            vec![
                ("r".to_owned(), AuxKind::Pre),
                ("s".to_owned(), AuxKind::Del)
            ]
        );
        assert!(statement_aux_refs(&Statement::Abort).is_empty());
    }

    #[test]
    fn transition_reporting() {
        let mut d = db();
        let (out, tr) = Executor.execute_with_transition(
            &mut d,
            &Program::new(vec![Statement::insert_tuples("s", vec![Tuple::of((20,))])]).bracket(),
        );
        assert!(out.is_committed());
        assert!(!tr.is_identity());
        assert_eq!(tr.before.relation("s").unwrap().len(), 1);
        assert_eq!(tr.after.relation("s").unwrap().len(), 2);
    }

    #[test]
    fn aborted_transition_is_identity() {
        let mut d = db();
        let (out, tr) = Executor.execute_with_transition(
            &mut d,
            &Program::new(vec![
                Statement::insert_tuples("s", vec![Tuple::of((20,))]),
                Statement::Abort,
            ])
            .bracket(),
        );
        assert!(!out.is_committed());
        assert!(tr.is_identity());
    }
}
