#![warn(missing_docs)]

//! # `tm-algebra` — the extended relational algebra and its executor
//!
//! This crate implements Section 2.2 and Definition 5.1 of Grefen,
//! *Combining Theory and Practice in Integrity Control* (VLDB 1993):
//!
//! * [`ScalarExpr`] — arithmetic/boolean expressions over tuples (the
//!   selection and join predicates, computed projections, and aggregate
//!   function applications of the paper's term language),
//! * [`RelExpr`] — relational expressions: selection, projection, theta
//!   join, semi-join, anti-join, union, difference, intersection, cartesian
//!   product, and literal/singleton relations,
//! * [`Statement`] — the *extended* statements that make the algebra a
//!   programming language: assignment to temporaries, `insert`, `delete`,
//!   `update`, the paper's **`alarm`** statement (Definition 5.1) and an
//!   explicit `abort`,
//! * [`Program`] — sequences of statements with the paper's program
//!   concatenation operator `⊕` (Definition 2.4),
//! * [`Transaction`] — a program within transaction brackets
//!   (Definition 2.5) plus the bracketing `↑` / debracketing `↓` operators,
//! * [`Executor`] — a main-memory evaluator with full transaction
//!   atomicity: intermediate states `D^{t,i}` may contain temporary
//!   relations, the end bracket installs `[D^{t,n}]` on commit or restores
//!   `D^t` on abort, and the engine automatically maintains the auxiliary
//!   relations of Section 4.1 (`R@pre`, `R@ins`, `R@del`),
//! * [`keys`] — equi-join key extraction from join predicates; join-shaped
//!   operators execute **hash-based** by default ([`JoinStrategy`]) with a
//!   nested-loop fallback, and `tm-parallel` reuses the same extractor for
//!   co-partition detection and shuffle routing.
//!
//! The executor is deliberately an *interpreter* over the algebra AST; the
//! paper's declarative algorithms (`ModT`, `TransC`, …) all manipulate this
//! AST, so keeping the runtime representation equal to the specification
//! representation is what makes the reproduction faithful.

pub mod builder;
pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod keys;
pub mod parser;
pub mod program;
pub mod rel_expr;

pub use error::{AlgebraError, Result};
pub use eval::{
    eval_aggregate, eval_scalar, eval_scalar_with, evaluate, evaluate_with, EvalContext,
    JoinStrategy, SchemaView,
};
pub use exec::{
    statement_aux_refs, AbortReason, CheckTimings, ExecPlan, ExecStats, Executor, TxContext,
    TxOutcome,
};
pub use expr::{AggFunc, ArithOp, CmpOp, ScalarExpr};
pub use keys::{extract_equi_keys, JoinKeys};
pub use parser::{parse_program, parse_relexpr};
pub use program::{Program, Statement, Transaction, UpdateAssignment};
pub use rel_expr::RelExpr;
