//! Trigger specifications and trigger sets (Definitions 4.5 and 4.6).

use std::collections::BTreeSet;
use std::fmt;

/// Elementary update types `U ∈ {INS, DEL}` (Definition 4.5). Updates are
/// treated as a DEL/INS combination, so no third variant exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UpdateType {
    /// Insertion into a relation.
    Ins,
    /// Deletion from a relation.
    Del,
}

impl fmt::Display for UpdateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            match self {
                UpdateType::Ins => "INS",
                UpdateType::Del => "DEL",
            }
        )
    }
}

/// A trigger specification `U(R)` — an update type applied to a relation
/// (Definition 4.5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Trigger {
    /// The update type.
    pub update: UpdateType,
    /// The relation name.
    pub relation: String,
}

impl Trigger {
    /// `INS(relation)`.
    pub fn ins(relation: impl Into<String>) -> Trigger {
        Trigger {
            update: UpdateType::Ins,
            relation: relation.into(),
        }
    }

    /// `DEL(relation)`.
    pub fn del(relation: impl Into<String>) -> Trigger {
        Trigger {
            update: UpdateType::Del,
            relation: relation.into(),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.update, self.relation)
    }
}

/// A trigger set (Definition 4.6) — stored ordered for deterministic
/// display and comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriggerSet {
    triggers: BTreeSet<Trigger>,
}

impl TriggerSet {
    /// The empty trigger set.
    pub fn empty() -> TriggerSet {
        TriggerSet::default()
    }

    /// Build from individual triggers.
    pub fn from_triggers(triggers: impl IntoIterator<Item = Trigger>) -> TriggerSet {
        TriggerSet {
            triggers: triggers.into_iter().collect(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Number of triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// Membership test.
    pub fn contains(&self, t: &Trigger) -> bool {
        self.triggers.contains(t)
    }

    /// Insert a trigger; returns whether it was new.
    pub fn insert(&mut self, t: Trigger) -> bool {
        self.triggers.insert(t)
    }

    /// Set union (consuming).
    pub fn union(mut self, other: TriggerSet) -> TriggerSet {
        self.triggers.extend(other.triggers);
        self
    }

    /// Whether the intersection with `other` is non-empty — the test at
    /// the heart of rule selection (`SelRS`, Algorithm 5.2) and of the
    /// triggering graph's edge definition (Definition 6.1).
    pub fn intersects(&self, other: &TriggerSet) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().any(|t| large.contains(t))
    }

    /// Iterate in deterministic (ordered) fashion.
    pub fn iter(&self) -> impl Iterator<Item = &Trigger> {
        self.triggers.iter()
    }

    /// The relations mentioned by the triggers, deduplicated, sorted.
    pub fn relations(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.triggers.iter().map(|t| t.relation.as_str()).collect();
        set.into_iter().collect()
    }
}

impl FromIterator<Trigger> for TriggerSet {
    fn from_iter<I: IntoIterator<Item = Trigger>>(iter: I) -> Self {
        TriggerSet::from_triggers(iter)
    }
}

impl fmt::Display for TriggerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.triggers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dedup() {
        let ts = TriggerSet::from_triggers(vec![
            Trigger::ins("beer"),
            Trigger::del("brewery"),
            Trigger::ins("beer"),
        ]);
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&Trigger::ins("beer")));
        assert!(!ts.contains(&Trigger::del("beer")));
    }

    #[test]
    fn intersection_tests() {
        let a = TriggerSet::from_triggers(vec![Trigger::ins("beer")]);
        let b = TriggerSet::from_triggers(vec![Trigger::ins("beer"), Trigger::del("x")]);
        let c = TriggerSet::from_triggers(vec![Trigger::del("beer")]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&TriggerSet::empty()));
        assert!(!TriggerSet::empty().intersects(&TriggerSet::empty()));
    }

    #[test]
    fn union_accumulates() {
        let a = TriggerSet::from_triggers(vec![Trigger::ins("r")]);
        let b = TriggerSet::from_triggers(vec![Trigger::del("r")]);
        let u = a.union(b);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn deterministic_display() {
        let ts = TriggerSet::from_triggers(vec![Trigger::ins("beer"), Trigger::del("brewery")]);
        // DEL < INS by enum order? No: Ins < Del in declaration order.
        assert_eq!(ts.to_string(), "INS(beer), DEL(brewery)");
    }

    #[test]
    fn relations_listed() {
        let ts = TriggerSet::from_triggers(vec![
            Trigger::ins("beer"),
            Trigger::del("beer"),
            Trigger::del("brewery"),
        ]);
        assert_eq!(ts.relations(), vec!["beer", "brewery"]);
    }
}
