//! The triggering graph and infinite-triggering analysis (Section 6.1).
//!
//! Definition 6.1: the triggering graph of a rule set `J` has the rules as
//! vertices and an edge `(J1, J2)` whenever
//! `GetTrigP(action(J1)) ∩ triggers(J2) ≠ ∅` — executing `J1`'s violation
//! response may trigger `J2`. "Infinite rule triggering in a rule set J can
//! only occur if the triggering graph of J contains one or more cycles", so
//! an integrity control subsystem validates rule sets by constructing and
//! analysing this graph; declaring actions *non-triggering*
//! (Definition 6.2) removes their outgoing edges.

use std::collections::BTreeSet;
use std::fmt;

use crate::gentrig::get_trig_px;
use crate::index::TriggerIndex;
use crate::rule::IntegrityRule;
use crate::trigger::TriggerSet;

/// The triggering graph of a rule set.
#[derive(Debug, Clone)]
pub struct TriggeringGraph {
    names: Vec<String>,
    /// Adjacency: `edges[i]` lists the indices of rules triggered by rule
    /// `i`'s action.
    edges: Vec<Vec<usize>>,
}

impl TriggeringGraph {
    /// Build the triggering graph of `rules` (Definition 6.1, with
    /// `GetTrigPX` so non-triggering actions contribute no edges).
    ///
    /// Edge construction routes through a [`TriggerIndex`] over the rules'
    /// trigger sets: each rule's out-edges are one inverted lookup over
    /// its *action* triggers, so building costs O(N·affected) rather than
    /// the all-pairs O(N²) intersection — on a catalog where most actions
    /// trigger nothing (every aborting rule), the per-rule cost is O(1).
    /// [`TriggerIndex::candidates`] returns positions sorted in catalog
    /// order, exactly matching what the linear scan produced.
    pub fn build(rules: &[IntegrityRule]) -> TriggeringGraph {
        let action_triggers: Vec<TriggerSet> = rules
            .iter()
            .map(|r| get_trig_px(&r.action.as_program(), r.non_triggering))
            .collect();
        Self::build_with(
            rules.iter().map(|r| r.name.clone()).collect(),
            rules.iter().map(|r| r.triggers()),
            &action_triggers,
        )
    }

    /// Build from pre-computed trigger data: `triggers` are the rules'
    /// trigger sets (in catalog order, matching `names`), and
    /// `action_triggers[i]` is `GetTrigPX(action(i))`. This is the entry
    /// point for callers that already cache both per rule (the static
    /// analyzer), skipping the per-build `GetTrigPX` walk.
    pub fn build_with<'a>(
        names: Vec<String>,
        triggers: impl IntoIterator<Item = &'a TriggerSet>,
        action_triggers: &[TriggerSet],
    ) -> TriggeringGraph {
        let index = TriggerIndex::build(triggers);
        let edges = action_triggers
            .iter()
            .map(|at| index.candidates(at))
            .collect();
        TriggeringGraph { names, edges }
    }

    /// The graph obtained by deleting the given `(from, to)` edges —
    /// the semantic-refinement step: an edge whose triggering is proven
    /// impossible is removed before re-running cycle detection.
    pub fn without_edges(&self, pruned: &BTreeSet<(usize, usize)>) -> TriggeringGraph {
        TriggeringGraph {
            names: self.names.clone(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, targets)| {
                    targets
                        .iter()
                        .copied()
                        .filter(|&j| !pruned.contains(&(i, j)))
                        .collect()
                })
                .collect(),
        }
    }

    /// The vertex names, in catalog order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Adjacency lists: `edges()[i]` holds the positions triggered by rule
    /// `i`'s action, sorted.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// One explicit closed triggering walk per cyclic SCC, rendered as
    /// rule names with the start repeated at the end (`["a", "b", "a"]`),
    /// deterministic. Where [`TriggeringGraph::cycles`] reports the
    /// *membership* of each cycle, this reports a concrete path — the form
    /// an error message can show as `a -> b -> a`.
    pub fn cycle_paths(&self) -> Vec<Vec<String>> {
        let mut paths = Vec::new();
        for scc in self.tarjan_sccs() {
            let cyclic = scc.len() > 1 || (scc.len() == 1 && self.edges[scc[0]].contains(&scc[0]));
            if !cyclic {
                continue;
            }
            let start = scc[0]; // sorted: smallest catalog position
            if let Some(path) = self.closed_walk(start, &scc) {
                paths.push(path.into_iter().map(|i| self.names[i].clone()).collect());
            }
        }
        paths.sort();
        paths
    }

    /// A closed walk `start -> … -> start` staying inside `scc` (sorted),
    /// found by BFS from `start`'s successors back to `start`.
    fn closed_walk(&self, start: usize, scc: &[usize]) -> Option<Vec<usize>> {
        let in_scc = |v: usize| scc.binary_search(&v).is_ok();
        // BFS parent pointers from start, over SCC-internal edges.
        let mut parent: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        for &next in &self.edges[start] {
            if in_scc(next) && !parent.contains_key(&next) && next != start {
                parent.insert(next, start);
                queue.push_back(next);
            }
            if next == start {
                return Some(vec![start, start]); // self-loop
            }
        }
        while let Some(v) = queue.pop_front() {
            for &next in &self.edges[v] {
                if next == start {
                    // Found the way back: unwind the parent chain.
                    let mut rev = vec![start, v];
                    let mut cur = v;
                    while let Some(&p) = parent.get(&cur) {
                        if p == start {
                            break;
                        }
                        rev.push(p);
                        cur = p;
                    }
                    rev.push(start);
                    rev.reverse();
                    return Some(rev);
                }
                if in_scc(next) && !parent.contains_key(&next) {
                    parent.insert(next, v);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Number of vertices (rules).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The edges as `(from, to)` rule-name pairs, deterministic order.
    pub fn edge_names(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        for (i, targets) in self.edges.iter().enumerate() {
            for &j in targets {
                out.push((self.names[i].as_str(), self.names[j].as_str()));
            }
        }
        out
    }

    /// All elementary cycles' vertex sets, as rule-name lists — computed
    /// via strongly connected components (a rule set is cycle-free iff
    /// every SCC is a single vertex without a self-loop).
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let sccs = self.tarjan_sccs();
        let mut cycles = Vec::new();
        for scc in sccs {
            let cyclic = scc.len() > 1 || (scc.len() == 1 && self.edges[scc[0]].contains(&scc[0]));
            if cyclic {
                let mut names: Vec<String> = scc.iter().map(|&i| self.names[i].clone()).collect();
                names.sort();
                cycles.push(names);
            }
        }
        cycles.sort();
        cycles
    }

    /// Whether the rule set is free of potential infinite triggering.
    pub fn is_acyclic(&self) -> bool {
        self.cycles().is_empty()
    }

    fn tarjan_sccs(&self) -> Vec<Vec<usize>> {
        struct State<'g> {
            graph: &'g TriggeringGraph,
            index: usize,
            indices: Vec<Option<usize>>,
            lowlink: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            sccs: Vec<Vec<usize>>,
        }
        fn strongconnect(s: &mut State<'_>, v: usize) {
            s.indices[v] = Some(s.index);
            s.lowlink[v] = s.index;
            s.index += 1;
            s.stack.push(v);
            s.on_stack[v] = true;
            for i in 0..s.graph.edges[v].len() {
                let w = s.graph.edges[v][i];
                if s.indices[w].is_none() {
                    strongconnect(s, w);
                    s.lowlink[v] = s.lowlink[v].min(s.lowlink[w]);
                } else if s.on_stack[w] {
                    s.lowlink[v] = s.lowlink[v].min(s.indices[w].expect("visited"));
                }
            }
            if Some(s.lowlink[v]) == s.indices[v] {
                let mut scc = Vec::new();
                loop {
                    let w = s.stack.pop().expect("stack non-empty");
                    s.on_stack[w] = false;
                    scc.push(w);
                    if w == v {
                        break;
                    }
                }
                scc.sort_unstable();
                s.sccs.push(scc);
            }
        }
        let n = self.len();
        let mut state = State {
            graph: self,
            index: 0,
            indices: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            sccs: Vec::new(),
        };
        for v in 0..n {
            if state.indices[v].is_none() {
                strongconnect(&mut state, v);
            }
        }
        state.sccs
    }
}

impl fmt::Display for TriggeringGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "triggering graph: {} rule(s)", self.len())?;
        for (from, to) in self.edge_names() {
            writeln!(f, "  {from} -> {to}")?;
        }
        Ok(())
    }
}

/// Result of validating a rule set for triggering behaviour (the check
/// Section 6.1 prescribes at rule definition time).
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Cyclic rule groups; empty means the set is safe.
    pub cycles: Vec<Vec<String>>,
    /// Rule names indexed consistently with the graph.
    pub rule_names: Vec<String>,
}

impl ValidationReport {
    /// Validate a rule set: build the triggering graph and collect cycles.
    pub fn validate(rules: &[IntegrityRule]) -> ValidationReport {
        let graph = TriggeringGraph::build(rules);
        ValidationReport {
            cycles: graph.cycles(),
            rule_names: rules.iter().map(|r| r.name.clone()).collect(),
        }
    }

    /// Whether the rule set may trigger forever.
    pub fn has_cycles(&self) -> bool {
        !self.cycles.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cycles.is_empty() {
            write!(
                f,
                "rule set is cycle-free ({} rules)",
                self.rule_names.len()
            )
        } else {
            writeln!(f, "rule set has potential infinite triggering:")?;
            for c in &self.cycles {
                writeln!(f, "  cycle: {}", c.join(" -> "))?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleAction;
    use crate::trigger::Trigger;
    use tm_calculus::parse_formula;

    fn abort_rule(name: &str, triggers: Vec<Trigger>) -> IntegrityRule {
        IntegrityRule::new(
            name,
            TriggerSet::from_triggers(triggers),
            parse_formula("1 = 1").unwrap(),
            RuleAction::Abort,
        )
    }

    fn compensating_rule(name: &str, triggers: Vec<Trigger>, action: &str) -> IntegrityRule {
        IntegrityRule::new(
            name,
            TriggerSet::from_triggers(triggers),
            parse_formula("1 = 1").unwrap(),
            RuleAction::Compensate(tm_algebra::parse_program(action).unwrap()),
        )
    }

    #[test]
    fn aborting_rules_never_cycle() {
        let rules = vec![
            abort_rule("a", vec![Trigger::ins("r")]),
            abort_rule("b", vec![Trigger::del("r")]),
        ];
        let g = TriggeringGraph::build(&rules);
        assert!(g.is_acyclic());
        assert!(g.edge_names().is_empty());
    }

    #[test]
    fn compensation_creates_edges() {
        let rules = vec![
            compensating_rule("fixup", vec![Trigger::ins("r")], "insert(s, {(1)})"),
            abort_rule("check_s", vec![Trigger::ins("s")]),
        ];
        let g = TriggeringGraph::build(&rules);
        assert_eq!(g.edge_names(), vec![("fixup", "check_s")]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn self_loop_detected() {
        // Rule triggered by INS(r) whose action inserts into r.
        let rules = vec![compensating_rule(
            "looper",
            vec![Trigger::ins("r")],
            "insert(r, {(1)})",
        )];
        let g = TriggeringGraph::build(&rules);
        assert!(!g.is_acyclic());
        assert_eq!(g.cycles(), vec![vec!["looper".to_owned()]]);
    }

    #[test]
    fn two_rule_cycle_detected() {
        let rules = vec![
            compensating_rule("a", vec![Trigger::ins("r")], "insert(s, {(1)})"),
            compensating_rule("b", vec![Trigger::ins("s")], "insert(r, {(1)})"),
        ];
        let report = ValidationReport::validate(&rules);
        assert!(report.has_cycles());
        assert_eq!(report.cycles, vec![vec!["a".to_owned(), "b".to_owned()]]);
    }

    #[test]
    fn non_triggering_breaks_cycle() {
        let rules = vec![
            compensating_rule("a", vec![Trigger::ins("r")], "insert(s, {(1)})"),
            compensating_rule("b", vec![Trigger::ins("s")], "insert(r, {(1)})").non_triggering(),
        ];
        let report = ValidationReport::validate(&rules);
        assert!(!report.has_cycles(), "{report}");
    }

    #[test]
    fn diamond_without_cycle() {
        let rules = vec![
            compensating_rule(
                "top",
                vec![Trigger::ins("a")],
                "insert(b, {(1)}); insert(c, {(1)})",
            ),
            compensating_rule("left", vec![Trigger::ins("b")], "insert(d, {(1)})"),
            compensating_rule("right", vec![Trigger::ins("c")], "insert(d, {(1)})"),
            abort_rule("bottom", vec![Trigger::ins("d")]),
        ];
        let g = TriggeringGraph::build(&rules);
        assert!(g.is_acyclic());
        assert_eq!(g.edge_names().len(), 4);
    }

    #[test]
    fn display_renders_edges() {
        let rules = vec![
            compensating_rule("fixup", vec![Trigger::ins("r")], "insert(s, {(1)})"),
            abort_rule("check_s", vec![Trigger::ins("s")]),
        ];
        let g = TriggeringGraph::build(&rules);
        let s = g.to_string();
        assert!(s.contains("fixup -> check_s"));
    }
}
