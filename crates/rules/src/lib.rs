#![warn(missing_docs)]

//! # `tm-rules` — the RL integrity rule language
//!
//! Section 4.2 of Grefen (VLDB 1993) turns declarative integrity
//! constraints into *integrity rules* — the operational form used by the
//! transaction modification subsystem:
//!
//! ```text
//! WHEN  ts          -- trigger set: update types that may violate
//! IF NOT c          -- the CL constraint
//! THEN  p           -- violation response action (algebra program)
//! ```
//!
//! This crate provides:
//!
//! * [`trigger`] — trigger specifications `U(R)` and trigger sets
//!   (Definitions 4.5–4.6),
//! * [`rule`] — integrity rules (Definition 4.7) with aborting or
//!   compensating violation response actions,
//! * [`gentrig`] — automatic trigger set generation from rule conditions
//!   (`GenTrigC`, Algorithm 5.7) plus the statement-level trigger
//!   derivation of Algorithm 5.2 (`GetTrigS`/`GetTrigP`) and the
//!   non-triggering variant `GetTrigPX` (Definition 6.2),
//! * [`graph`] — the triggering graph with cycle detection
//!   (Definition 6.1),
//! * [`index`] — an inverted trigger index so rule selection costs
//!   O(affected) instead of O(catalog),
//! * [`parser`] — a parser for the textual RL syntax
//!   (`WHEN INS(beer) IF NOT <CL> THEN abort`).

pub mod gentrig;
pub mod graph;
pub mod index;
pub mod parser;
pub mod rule;
pub mod trigger;

pub use gentrig::{gen_trig_c, get_trig_p, get_trig_px, get_trig_s};
pub use graph::{TriggeringGraph, ValidationReport};
pub use index::TriggerIndex;
pub use parser::parse_rule;
pub use rule::{IntegrityRule, RuleAction};
pub use trigger::{Trigger, TriggerSet, UpdateType};
