//! Parser for the textual RL syntax (Definition 4.7).
//!
//! ```text
//! RULE r2
//! WHEN INS(beer), DEL(brewery)
//! IF NOT forall x (x in beer implies
//!          exists y (y in brewery and x.brewery = y.name))
//! THEN temp := minus(project[#2](beer), project[#0](brewery));
//!      insert(brewery, project[#0, null, null](temp))
//! [NON-TRIGGERING]
//! ```
//!
//! * the `RULE <name>` header is optional (a generated name is used),
//! * `WHEN <trigger list>` is optional — when omitted, the trigger set is
//!   generated from the condition with `GenTrigC`, which Section 5.3 calls
//!   "more convenient and less error-prone",
//! * the condition uses the CL syntax of `tm-calculus`,
//! * the action is `abort` or an algebra program in `tm-algebra` syntax,
//! * a trailing `NON-TRIGGERING` marker sets the Definition 6.2 flag.

use tm_calculus::{parse_formula, CalculusError};

use crate::rule::{IntegrityRule, RuleAction};
use crate::trigger::{Trigger, TriggerSet, UpdateType};

/// Errors from RL parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleParseError {
    /// Structural problem with the WHEN/IF NOT/THEN skeleton.
    Structure(String),
    /// Bad trigger specification.
    Trigger(String),
    /// The condition failed to parse as CL.
    Condition(CalculusError),
    /// The action failed to parse as an algebra program.
    Action(String),
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleParseError::Structure(m) => write!(f, "rule structure error: {m}"),
            RuleParseError::Trigger(m) => write!(f, "trigger specification error: {m}"),
            RuleParseError::Condition(e) => write!(f, "condition error: {e}"),
            RuleParseError::Action(m) => write!(f, "action error: {m}"),
        }
    }
}

impl std::error::Error for RuleParseError {}

/// Case-insensitive search for a keyword at word boundaries, returning
/// (start, end) byte offsets.
fn find_keyword(src: &str, kw: &str, from: usize) -> Option<(usize, usize)> {
    let lower = src.to_ascii_lowercase();
    let kw = kw.to_ascii_lowercase();
    let mut at = from;
    while let Some(rel) = lower[at..].find(&kw) {
        let start = at + rel;
        let end = start + kw.len();
        let before_ok = start == 0
            || !lower.as_bytes()[start - 1].is_ascii_alphanumeric()
                && lower.as_bytes()[start - 1] != b'_';
        let after_ok = end >= lower.len()
            || !lower.as_bytes()[end].is_ascii_alphanumeric() && lower.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return Some((start, end));
        }
        at = end;
    }
    None
}

fn parse_trigger_list(src: &str) -> Result<TriggerSet, RuleParseError> {
    // `WHEN NONE` declares an explicitly empty trigger set — a rule that
    // never fires. It is distinct from omitting WHEN (which generates
    // triggers from the condition); the canonical persistence format uses
    // it so a round trip preserves emptiness.
    if src.eq_ignore_ascii_case("none") {
        return Ok(TriggerSet::empty());
    }
    let mut out = TriggerSet::empty();
    for part in src.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let open = part
            .find('(')
            .ok_or_else(|| RuleParseError::Trigger(format!("missing `(` in `{part}`")))?;
        let close = part
            .rfind(')')
            .ok_or_else(|| RuleParseError::Trigger(format!("missing `)` in `{part}`")))?;
        if close < open {
            return Err(RuleParseError::Trigger(format!(
                "malformed trigger `{part}`"
            )));
        }
        let update = match part[..open].trim().to_ascii_uppercase().as_str() {
            "INS" => UpdateType::Ins,
            "DEL" => UpdateType::Del,
            other => {
                return Err(RuleParseError::Trigger(format!(
                    "unknown update type `{other}` (expected INS or DEL)"
                )))
            }
        };
        let relation = part[open + 1..close].trim();
        if relation.is_empty() {
            return Err(RuleParseError::Trigger(format!(
                "empty relation name in `{part}`"
            )));
        }
        out.insert(Trigger {
            update,
            relation: relation.to_owned(),
        });
    }
    if out.is_empty() {
        return Err(RuleParseError::Trigger("empty trigger list".into()));
    }
    Ok(out)
}

/// Parse one RL rule. `default_name` is used when no `RULE <name>` header
/// is present.
pub fn parse_rule(src: &str, default_name: &str) -> Result<IntegrityRule, RuleParseError> {
    let src = src.trim();

    // Optional NON-TRIGGERING suffix.
    let (src, non_triggering) = {
        let trimmed = src.trim_end();
        let lower = trimmed.to_ascii_lowercase();
        if let Some(cut) = lower
            .strip_suffix("non-triggering")
            .or_else(|| lower.strip_suffix("nontriggering"))
            .map(str::len)
        {
            (trimmed[..cut].trim_end(), true)
        } else {
            (trimmed, false)
        }
    };

    // Optional `RULE <name>` header at the very start.
    let (name, src) = if src.to_ascii_lowercase().starts_with("rule")
        && src[4..].starts_with(|c: char| c.is_whitespace())
    {
        let rest = src[4..].trim_start();
        let name_len = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
        let name = rest[..name_len].to_owned();
        if name.is_empty() {
            return Err(RuleParseError::Structure("empty rule name".into()));
        }
        (name, &rest[name_len..])
    } else {
        (default_name.to_owned(), src)
    };

    // IF NOT is mandatory; WHEN optional.
    let (ifnot_start, ifnot_end) = find_keyword(src, "if", 0)
        .ok_or_else(|| RuleParseError::Structure("missing `IF NOT` clause".into()))?;
    let after_if = &src[ifnot_end..];
    let not_kw = find_keyword(after_if, "not", 0)
        .filter(|(s, _)| after_if[..*s].trim().is_empty())
        .ok_or_else(|| RuleParseError::Structure("`IF` must be followed by `NOT`".into()))?;
    let cond_start = ifnot_end + not_kw.1;

    let (then_start, then_end) = find_keyword(src, "then", cond_start)
        .ok_or_else(|| RuleParseError::Structure("missing `THEN` clause".into()))?;

    // WHEN clause, if present, precedes IF NOT.
    let triggers = if let Some((when_start, when_end)) = find_keyword(src, "when", 0) {
        if when_start < ifnot_start {
            Some(parse_trigger_list(src[when_end..ifnot_start].trim())?)
        } else {
            None
        }
    } else {
        None
    };

    let condition_src = src[cond_start..then_start].trim();
    let condition = parse_formula(condition_src).map_err(RuleParseError::Condition)?;

    let action_src = src[then_end..].trim();
    let action = if action_src.eq_ignore_ascii_case("abort") {
        RuleAction::Abort
    } else {
        let program = tm_algebra::parse_program(action_src)
            .map_err(|e| RuleParseError::Action(e.to_string()))?;
        // A THEN program consisting solely of `abort` is the aborting form.
        if program.statements() == [tm_algebra::Statement::Abort] {
            RuleAction::Abort
        } else {
            RuleAction::Compensate(program)
        }
    };

    let rule = match triggers {
        Some(ts) => IntegrityRule::new(name, ts, condition, action),
        None => IntegrityRule::with_generated_triggers(name, condition, action),
    };
    Ok(if non_triggering {
        rule.non_triggering()
    } else {
        rule
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_r1() {
        let r = parse_rule(
            "WHEN INS(beer) \
             IF NOT forall x (x in beer implies x.alcohol >= 0) \
             THEN abort",
            "r1",
        )
        .unwrap();
        assert_eq!(r.name, "r1");
        assert_eq!(r.triggers().to_string(), "INS(beer)");
        assert!(r.action().is_abort());
    }

    #[test]
    fn parses_paper_r2_with_compensation() {
        let r = parse_rule(
            "RULE r2 \
             WHEN INS(beer), DEL(brewery) \
             IF NOT forall x (x in beer implies \
                      exists y (y in brewery and x.brewery = y.name)) \
             THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                  insert(brewery, project[#0, null, null](temp))",
            "ignored",
        )
        .unwrap();
        assert_eq!(r.name, "r2");
        assert_eq!(r.triggers().to_string(), "INS(beer), DEL(brewery)");
        assert!(!r.action().is_abort());
        match r.action() {
            RuleAction::Compensate(p) => assert_eq!(p.len(), 2),
            other => panic!("expected compensation, got {other:?}"),
        }
    }

    #[test]
    fn when_clause_optional_triggers_generated() {
        let r = parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
            "auto",
        )
        .unwrap();
        assert_eq!(r.triggers().to_string(), "INS(beer)");
    }

    #[test]
    fn non_triggering_marker() {
        let r = parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) \
             THEN delete(beer, select[#3 < 0](beer)) NON-TRIGGERING",
            "nt",
        )
        .unwrap();
        assert!(r.non_triggering);
        assert!(!r.action().is_abort());
    }

    #[test]
    fn abort_program_collapses_to_abort_action() {
        let r = parse_rule("IF NOT 1 = 1 THEN abort;", "x").unwrap();
        assert!(r.action().is_abort());
    }

    #[test]
    fn structure_errors() {
        assert!(matches!(
            parse_rule("THEN abort", "x"),
            Err(RuleParseError::Structure(_))
        ));
        assert!(matches!(
            parse_rule("IF 1 = 1 THEN abort", "x"),
            Err(RuleParseError::Structure(_))
        ));
        assert!(matches!(
            parse_rule("IF NOT 1 = 1", "x"),
            Err(RuleParseError::Structure(_))
        ));
        assert!(matches!(
            parse_rule("WHEN FOO(r) IF NOT 1 = 1 THEN abort", "x"),
            Err(RuleParseError::Trigger(_))
        ));
        assert!(matches!(
            parse_rule("IF NOT forall x (x in THEN abort", "x"),
            Err(RuleParseError::Condition(_))
        ));
        assert!(matches!(
            parse_rule("IF NOT 1 = 1 THEN insert(r)", "x"),
            Err(RuleParseError::Action(_))
        ));
    }

    #[test]
    fn keywords_case_insensitive() {
        let r = parse_rule(
            "when ins(beer) if not forall x (x in beer implies x.alcohol >= 0) then abort",
            "lc",
        )
        .unwrap();
        assert_eq!(r.triggers().to_string(), "INS(beer)");
    }

    #[test]
    fn identifiers_containing_keywords_not_confused() {
        // Relation named `thenewest` must not be mistaken for `THEN`.
        let r = parse_rule(
            "IF NOT forall x (x in thenewest implies x.1 >= 0) THEN abort",
            "kw",
        );
        assert!(r.is_ok(), "{r:?}");
    }
}
