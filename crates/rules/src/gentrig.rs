//! Trigger set generation (Algorithms 5.2 and 5.7, Definition 6.2).
//!
//! Two derivations live here:
//!
//! 1. **From conditions** — `GenTrigC` (Algorithm 5.7) derives the trigger
//!    set of an integrity rule from its CL condition by a structural
//!    recursion that tracks the *effective* quantifier of every variable:
//!    `GenTrigW` walks positive positions, `GenTrigN` negative ones, and
//!    the two swap the universal/existential variable sets at quantifiers
//!    (because `¬∀ ≡ ∃¬`). At a membership atom `x ∈ R`, an effectively
//!    universal variable contributes `INS(R)` (a new tuple must satisfy the
//!    condition) and an effectively existential one contributes `DEL(R)`
//!    (removing a witness may falsify it). Aggregate and counting terms
//!    contribute both update types for their relation.
//!
//!    The derivation is exact under the CL convention that each variable's
//!    membership atom *is* its range declaration (requirements on other
//!    relations are phrased through quantified variables, as the paper's
//!    own examples do).
//!
//! 2. **From programs** — `GetTrigS`/`GetTrigP` (Algorithm 5.2) derive the
//!    update types a program performs: `insert(R, E) → {INS(R)}`,
//!    `delete(R, E) → {DEL(R)}`, `update(R, …) → {INS(R), DEL(R)}`.
//!    `GetTrigPX` (Definition 6.2) additionally respects the
//!    *non-triggering* declaration by returning the empty set.
//!
//! Triggers are always attributed to **base relations**: a condition over
//! `beer@pre` is checked against the pre-state, which no update of the
//! current transaction can change, so auxiliary-relation atoms contribute
//! no triggers.

use tm_calculus::ast::{Atom, Formula, Quantifier, Term, VarName};
use tm_relational::auxiliary;

use std::collections::BTreeSet;

use tm_algebra::{Program, Statement};

use crate::trigger::{Trigger, TriggerSet, UpdateType};

/// Variable context: the sets `V_u` and `V_e` of Algorithm 5.7.
#[derive(Debug, Default, Clone)]
struct VarSets {
    universal: BTreeSet<VarName>,
    existential: BTreeSet<VarName>,
}

/// `GenTrigC` (Algorithm 5.7): generate a trigger set from a rule
/// condition.
pub fn gen_trig_c(condition: &Formula) -> TriggerSet {
    let mut out = TriggerSet::empty();
    gen_trig_w(condition, &VarSets::default(), &mut out);
    out
}

/// `GenTrigW`: positive-position walk.
fn gen_trig_w(w: &Formula, vars: &VarSets, out: &mut TriggerSet) {
    match w {
        Formula::Quant(Quantifier::Forall, x, body) => {
            let mut v = vars.clone();
            v.universal.insert(x.clone());
            v.existential.remove(x);
            gen_trig_w(body, &v, out);
        }
        Formula::Quant(Quantifier::Exists, x, body) => {
            let mut v = vars.clone();
            v.existential.insert(x.clone());
            v.universal.remove(x);
            gen_trig_w(body, &v, out);
        }
        Formula::And(l, r) | Formula::Or(l, r) => {
            gen_trig_w(l, vars, out);
            gen_trig_w(r, vars, out);
        }
        Formula::Implies(l, r) => {
            gen_trig_n(l, vars, out);
            gen_trig_w(r, vars, out);
        }
        Formula::Not(x) => gen_trig_n(x, vars, out),
        Formula::Atom(a) => gen_trig_a(a, vars, out),
    }
}

/// `GenTrigN`: negative-position walk — quantifier roles swap.
fn gen_trig_n(w: &Formula, vars: &VarSets, out: &mut TriggerSet) {
    match w {
        Formula::Quant(Quantifier::Forall, x, body) => {
            let mut v = vars.clone();
            v.existential.insert(x.clone());
            v.universal.remove(x);
            gen_trig_n(body, &v, out);
        }
        Formula::Quant(Quantifier::Exists, x, body) => {
            let mut v = vars.clone();
            v.universal.insert(x.clone());
            v.existential.remove(x);
            gen_trig_n(body, &v, out);
        }
        Formula::And(l, r) | Formula::Or(l, r) => {
            gen_trig_n(l, vars, out);
            gen_trig_n(r, vars, out);
        }
        Formula::Implies(l, r) => {
            gen_trig_w(l, vars, out);
            gen_trig_n(r, vars, out);
        }
        Formula::Not(x) => gen_trig_w(x, vars, out),
        Formula::Atom(a) => gen_trig_a(a, vars, out),
    }
}

/// `GenTrigA`: triggers contributed by an atomic formula.
fn gen_trig_a(a: &Atom, vars: &VarSets, out: &mut TriggerSet) {
    match a {
        Atom::Cmp(_, l, r) => {
            gen_trig_t(l, out);
            gen_trig_t(r, out);
        }
        Atom::Member { var, rel } => {
            // Auxiliary relations (pre-state) cannot be changed by the
            // transaction being modified — no trigger.
            if auxiliary::is_auxiliary(rel) {
                return;
            }
            if vars.universal.contains(var) {
                out.insert(Trigger::ins(rel.clone()));
            } else if vars.existential.contains(var) {
                out.insert(Trigger::del(rel.clone()));
            }
        }
        Atom::TupleEq(..) => {}
    }
}

/// `GenTrigT`: triggers contributed by a term — aggregates and counts
/// depend on the whole relation, so both update types threaten them.
fn gen_trig_t(t: &Term, out: &mut TriggerSet) {
    match t {
        Term::Agg { rel, .. } | Term::Cnt { rel } => {
            if !auxiliary::is_auxiliary(rel) {
                out.insert(Trigger::ins(rel.clone()));
                out.insert(Trigger::del(rel.clone()));
            }
        }
        Term::Arith(_, l, r) => {
            gen_trig_t(l, out);
            gen_trig_t(r, out);
        }
        Term::Const(_) | Term::Attr { .. } => {}
    }
}

/// `GetTrigS` (Algorithm 5.2): triggers performed by a single statement.
pub fn get_trig_s(s: &Statement) -> TriggerSet {
    match s {
        Statement::Insert { relation, .. } => {
            TriggerSet::from_triggers(vec![Trigger::ins(relation.clone())])
        }
        Statement::Delete { relation, .. } => {
            TriggerSet::from_triggers(vec![Trigger::del(relation.clone())])
        }
        Statement::Update { relation, .. } => TriggerSet::from_triggers(vec![
            Trigger::ins(relation.clone()),
            Trigger::del(relation.clone()),
        ]),
        Statement::Assign { .. } | Statement::Alarm(_) | Statement::Abort => TriggerSet::empty(),
    }
}

/// `GetTrigP` (Algorithm 5.2): triggers performed by a program — the union
/// over its statements.
pub fn get_trig_p(p: &Program) -> TriggerSet {
    let mut out = TriggerSet::empty();
    for s in p.statements() {
        out = out.union(get_trig_s(s));
    }
    out
}

/// `GetTrigPX` (Definition 6.2): like [`get_trig_p`], but a program
/// declared non-triggering contributes nothing.
pub fn get_trig_px(p: &Program, non_triggering: bool) -> TriggerSet {
    if non_triggering {
        TriggerSet::empty()
    } else {
        get_trig_p(p)
    }
}

/// The update types as a pair, useful for exhaustive sweeps in tests.
pub const ALL_UPDATE_TYPES: [UpdateType; 2] = [UpdateType::Ins, UpdateType::Del];

#[cfg(test)]
mod tests {
    use super::*;
    use tm_calculus::parse_formula;

    fn triggers_of(src: &str) -> String {
        gen_trig_c(&parse_formula(src).unwrap()).to_string()
    }

    #[test]
    fn paper_r1_domain_constraint() {
        // I1: (∀x)(x ∈ beer ⇒ x.alcohol ≥ 0) — paper: WHEN INS(beer)
        assert_eq!(
            triggers_of("forall x (x in beer implies x.alcohol >= 0)"),
            "INS(beer)"
        );
    }

    #[test]
    fn paper_r2_referential_constraint() {
        // I2 — paper: WHEN INS(beer), DEL(brewery)
        assert_eq!(
            triggers_of(
                "forall x (x in beer implies \
                 exists y (y in brewery and x.brewery = y.name))"
            ),
            "INS(beer), DEL(brewery)"
        );
    }

    #[test]
    fn exclusion_constraint() {
        // (∀x)(x∈R ⇒ (∀y)(y∈S ⇒ x.1 ≠ y.1)): inserts into either side.
        assert_eq!(
            triggers_of("forall x (x in r implies forall y (y in s implies x.1 != y.1))"),
            "INS(r), INS(s)"
        );
    }

    #[test]
    fn pure_existence_constraint() {
        // (∃x)(x ∈ r): only deletion can falsify.
        assert_eq!(triggers_of("exists x (x in r and x.1 = x.1)"), "DEL(r)");
    }

    #[test]
    fn negated_existence() {
        // ¬(∃x)(x∈r ∧ c): under negation x is effectively universal → INS.
        assert_eq!(triggers_of("not exists x (x in r and x.1 > 0)"), "INS(r)");
    }

    #[test]
    fn aggregates_trigger_both() {
        assert_eq!(
            triggers_of("SUM(account, 2) <= 100"),
            "INS(account), DEL(account)"
        );
        assert_eq!(triggers_of("CNT(beer) < 10"), "INS(beer), DEL(beer)");
        assert_eq!(
            triggers_of("SUM(a, 1) = CNT(b)"),
            "INS(a), INS(b), DEL(a), DEL(b)"
        );
    }

    #[test]
    fn pre_state_atoms_do_not_trigger() {
        // Transition constraint: old tuples must persist. Only DEL(beer)
        // can violate; beer@pre is immutable.
        assert_eq!(
            triggers_of("forall x (x in beer@pre implies exists y (y in beer and x == y))"),
            "DEL(beer)"
        );
    }

    #[test]
    fn double_negation_restores_polarity() {
        assert_eq!(
            triggers_of("not not forall x (x in beer implies x.alcohol >= 0)"),
            "INS(beer)"
        );
    }

    #[test]
    fn get_trig_s_matches_algorithm() {
        use tm_algebra::RelExpr;
        let ins = Statement::Insert {
            relation: "r".into(),
            source: RelExpr::relation("s"),
        };
        assert_eq!(get_trig_s(&ins).to_string(), "INS(r)");
        let del = Statement::Delete {
            relation: "r".into(),
            source: RelExpr::relation("s"),
        };
        assert_eq!(get_trig_s(&del).to_string(), "DEL(r)");
        let upd = Statement::Update {
            relation: "r".into(),
            pred: tm_algebra::ScalarExpr::true_(),
            set: vec![],
        };
        assert_eq!(get_trig_s(&upd).to_string(), "INS(r), DEL(r)");
        assert!(get_trig_s(&Statement::Abort).is_empty());
        assert!(get_trig_s(&Statement::Alarm(RelExpr::relation("r"))).is_empty());
        assert!(get_trig_s(&Statement::Assign {
            target: "t".into(),
            expr: RelExpr::relation("r")
        })
        .is_empty());
    }

    #[test]
    fn get_trig_p_unions() {
        let p = tm_algebra::parse_program("insert(a, {(1)}); delete(b, {(2)}); abort").unwrap();
        assert_eq!(get_trig_p(&p).to_string(), "INS(a), DEL(b)");
    }

    #[test]
    fn get_trig_px_respects_non_triggering() {
        let p = tm_algebra::parse_program("insert(a, {(1)})").unwrap();
        assert!(!get_trig_px(&p, false).is_empty());
        assert!(get_trig_px(&p, true).is_empty());
    }
}
