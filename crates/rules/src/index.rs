//! An inverted index over trigger sets: `trigger → entries`.
//!
//! Rule selection (`SelRS`, Algorithm 5.2) asks "which rules have a
//! trigger set intersecting the current frontier?" every modification
//! round. A linear scan answers that in O(N) per round over a catalog of
//! N rules — fine for the paper's examples, hostile to the large catalogs
//! the §7 experiments scale to, where a given transaction can only ever
//! touch a handful of rules. [`TriggerIndex`] inverts the relationship
//! once, at catalog-build time: each trigger maps to the (ordered) list of
//! entries carrying it, so a round costs O(|frontier| + |affected|)
//! regardless of catalog size. This is stage 1 of prepare-time constraint
//! specialization — relevance filtering — and it also serves the ad-hoc
//! path, since nothing about it is specific to templates.

use std::collections::BTreeMap;

use crate::trigger::{Trigger, TriggerSet};

/// An inverted index from [`Trigger`] to the positions (in catalog order)
/// of the trigger sets containing it.
///
/// Positions are whatever the caller indexes — in `txmod` they are
/// offsets into the catalog's parallel rule/program vectors. The index is
/// append-friendly ([`TriggerIndex::add`]); removal rebuilds via
/// [`TriggerIndex::build`], matching the catalog's rare-removal workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriggerIndex {
    by_trigger: BTreeMap<Trigger, Vec<usize>>,
    len: usize,
}

impl TriggerIndex {
    /// An empty index.
    pub fn new() -> TriggerIndex {
        TriggerIndex::default()
    }

    /// Build an index over `sets`, where position `i` holds the trigger
    /// set of entry `i`.
    pub fn build<'a>(sets: impl IntoIterator<Item = &'a TriggerSet>) -> TriggerIndex {
        let mut index = TriggerIndex::new();
        for set in sets {
            index.add(set);
        }
        index
    }

    /// Append the next entry's trigger set. Entries must be added in
    /// position order (the entry's position is the number of entries
    /// added before it).
    pub fn add(&mut self, set: &TriggerSet) {
        let pos = self.len;
        self.len += 1;
        for t in set.iter() {
            self.by_trigger.entry(t.clone()).or_default().push(pos);
        }
    }

    /// Number of entries indexed (not the number of distinct triggers).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries have been indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The positions whose trigger sets intersect `frontier`, sorted and
    /// deduplicated — i.e. in catalog order, each entry once, exactly the
    /// set a linear `intersects` scan would select. Cost is proportional
    /// to the frontier and the affected entries, never to the catalog.
    pub fn candidates(&self, frontier: &TriggerSet) -> Vec<usize> {
        let mut out: Vec<usize> = frontier
            .iter()
            .filter_map(|t| self.by_trigger.get(t))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::Trigger;

    fn ts(triggers: Vec<Trigger>) -> TriggerSet {
        TriggerSet::from_triggers(triggers)
    }

    #[test]
    fn candidates_match_linear_scan() {
        let sets = vec![
            ts(vec![Trigger::ins("a")]),
            ts(vec![Trigger::ins("b"), Trigger::del("a")]),
            ts(vec![Trigger::del("c")]),
            ts(vec![Trigger::ins("a"), Trigger::ins("b")]),
            ts(vec![]),
        ];
        let index = TriggerIndex::build(&sets);
        assert_eq!(index.len(), 5);
        for frontier in [
            ts(vec![Trigger::ins("a")]),
            ts(vec![Trigger::ins("b")]),
            ts(vec![Trigger::del("a"), Trigger::del("c")]),
            ts(vec![
                Trigger::ins("a"),
                Trigger::ins("b"),
                Trigger::del("c"),
            ]),
            ts(vec![Trigger::del("nope")]),
            ts(vec![]),
        ] {
            let scan: Vec<usize> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.intersects(&frontier))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(index.candidates(&frontier), scan, "frontier {frontier}");
        }
    }

    #[test]
    fn multi_trigger_overlap_dedups_in_order() {
        let sets = vec![ts(vec![Trigger::ins("a"), Trigger::del("a")])];
        let index = TriggerIndex::build(&sets);
        let frontier = ts(vec![Trigger::ins("a"), Trigger::del("a")]);
        assert_eq!(index.candidates(&frontier), vec![0]);
    }

    #[test]
    fn incremental_add_matches_build() {
        let sets = vec![
            ts(vec![Trigger::ins("x")]),
            ts(vec![Trigger::del("y")]),
            ts(vec![Trigger::ins("x"), Trigger::del("y")]),
        ];
        let built = TriggerIndex::build(&sets);
        let mut incremental = TriggerIndex::new();
        for s in &sets {
            incremental.add(s);
        }
        assert_eq!(built, incremental);
    }

    #[test]
    fn empty_index_answers_nothing() {
        let index = TriggerIndex::new();
        assert!(index.is_empty());
        assert!(index.candidates(&ts(vec![Trigger::ins("a")])).is_empty());
    }
}
