//! Materialized view maintenance by transaction modification.
//!
//! The paper's conclusions note that "transaction modification can be used
//! for purposes other than integrity control as well, like materialized
//! view maintenance \[8\]". The mechanism is identical: a view is a stored
//! relation kept consistent by a rule whose *action* refreshes it, and
//! whose trigger set covers the updates to the relations the view is
//! derived from. Transaction modification appends the refresh program to
//! every transaction that touches a source relation — so readers of the
//! view always see it consistent with the post-transaction state.
//!
//! The view relation itself must be declared in the database schema (it is
//! an ordinary relation as far as storage is concerned); [`ViewDef`]
//! attaches the maintenance machinery.
//!
//! Maintenance is *incremental* for selection views `V = σ_p(R)` — the
//! refresh touches only the `R@ins`/`R@del` differentials — and a full
//! recomputation otherwise (set-semantics projections and joins are not
//! incrementally maintainable without multiplicity bookkeeping; the
//! multiset extension in `tm-relational` is the path there, as it was for
//! the paper \[8\]).

use tm_algebra::{Program, RelExpr, Statement};
use tm_calculus::parse_formula;
use tm_relational::{auxiliary, DatabaseSchema};
use tm_rules::{IntegrityRule, RuleAction, Trigger, TriggerSet};

use crate::error::{EngineError, Result};

/// A materialized view definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDef {
    /// The (pre-declared) relation that stores the view.
    pub name: String,
    /// The defining expression over base relations.
    pub definition: RelExpr,
}

impl ViewDef {
    /// Define a view: `name` must be a relation in the schema; the
    /// definition must not reference the view itself.
    pub fn new(name: impl Into<String>, definition: RelExpr) -> ViewDef {
        ViewDef {
            name: name.into(),
            definition,
        }
    }

    /// The base relations the view depends on (auxiliary names reduced to
    /// their base).
    pub fn sources(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .definition
            .referenced_relations()
            .iter()
            .map(|r| auxiliary::base_of(r).to_owned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The full-refresh program: `delete(V, V); insert(V, def)`.
    pub fn refresh_program(&self) -> Program {
        Program::new(vec![
            Statement::Delete {
                relation: self.name.clone(),
                source: RelExpr::relation(self.name.clone()),
            },
            Statement::Insert {
                relation: self.name.clone(),
                source: self.definition.clone(),
            },
        ])
    }

    /// The incremental program for selection views `σ_p(R)`:
    /// `delete(V, σ_p(R@del)); insert(V, σ_p(R@ins))`.
    fn incremental_program(&self) -> Option<Program> {
        match &self.definition {
            RelExpr::Select(input, pred) => match input.as_ref() {
                RelExpr::Rel(base) if !auxiliary::is_auxiliary(base) => Some(Program::new(vec![
                    Statement::Delete {
                        relation: self.name.clone(),
                        source: RelExpr::relation(auxiliary::del_name(base)).select(pred.clone()),
                    },
                    Statement::Insert {
                        relation: self.name.clone(),
                        source: RelExpr::relation(auxiliary::ins_name(base)).select(pred.clone()),
                    },
                ])),
                _ => None,
            },
            _ => None,
        }
    }

    /// Build the maintenance rule: triggered by every update type on every
    /// source relation, running the incremental program where possible and
    /// the full refresh otherwise.
    pub fn maintenance_rule(&self, schema: &DatabaseSchema) -> Result<IntegrityRule> {
        if !schema.contains(&self.name) {
            return Err(EngineError::View(format!(
                "view relation `{}` is not declared in the schema",
                self.name
            )));
        }
        let sources = self.sources();
        if sources.is_empty() {
            return Err(EngineError::View(format!(
                "view `{}` references no base relations",
                self.name
            )));
        }
        if sources.iter().any(|s| s == &self.name) {
            return Err(EngineError::View(format!(
                "view `{}` references itself",
                self.name
            )));
        }
        for s in &sources {
            if !schema.contains(s) {
                return Err(EngineError::View(format!(
                    "view `{}` references unknown relation `{s}`",
                    self.name
                )));
            }
        }
        let triggers: TriggerSet = sources
            .iter()
            .flat_map(|s| [Trigger::ins(s.clone()), Trigger::del(s.clone())])
            .collect();
        let program = self
            .incremental_program()
            .unwrap_or_else(|| self.refresh_program());
        // The condition is a formal placeholder: maintenance actions are
        // self-guarding (they recompute/adjust the view), mirroring the
        // paper's TransCA convention for compensating actions.
        let condition = parse_formula("1 = 1").expect("static formula parses");
        Ok(IntegrityRule::new(
            format!("view${}", self.name),
            triggers,
            condition,
            RuleAction::Compensate(program),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EnforcementMode, Engine, EngineConfig};
    use tm_algebra::builder::TransactionBuilder;
    use tm_algebra::{CmpOp, ScalarExpr};
    use tm_relational::{RelationSchema, Tuple, ValueType};

    fn schema() -> DatabaseSchema {
        DatabaseSchema::from_relations(vec![
            RelationSchema::of(
                "orders",
                &[("id", ValueType::Int), ("amount", ValueType::Int)],
            ),
            RelationSchema::of(
                "big_orders",
                &[("id", ValueType::Int), ("amount", ValueType::Int)],
            ),
            RelationSchema::of("order_ids", &[("id", ValueType::Int)]),
        ])
        .unwrap()
    }

    fn big_orders_view() -> ViewDef {
        ViewDef::new(
            "big_orders",
            RelExpr::relation("orders").select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(1),
                ScalarExpr::int(100),
            )),
        )
    }

    #[test]
    fn selection_view_is_incremental() {
        let v = big_orders_view();
        let rule = v.maintenance_rule(&schema()).unwrap();
        let p = rule.action().as_program();
        let rendered = p.to_string();
        assert!(rendered.contains("orders@del"), "{rendered}");
        assert!(rendered.contains("orders@ins"), "{rendered}");
        assert_eq!(rule.triggers().to_string(), "INS(orders), DEL(orders)");
    }

    #[test]
    fn projection_view_full_refresh() {
        let v = ViewDef::new("order_ids", RelExpr::relation("orders").project_cols(&[0]));
        let rule = v.maintenance_rule(&schema()).unwrap();
        let rendered = rule.action().as_program().to_string();
        assert!(
            rendered.contains("delete(order_ids, order_ids)"),
            "{rendered}"
        );
        assert!(rendered.contains("insert(order_ids"), "{rendered}");
    }

    #[test]
    fn view_maintained_through_transactions() {
        let mut e = Engine::with_config(
            schema(),
            EngineConfig {
                mode: EnforcementMode::Static,
                ..EngineConfig::default()
            },
        );
        e.define_view(big_orders_view()).unwrap();

        let tx = TransactionBuilder::new()
            .insert_tuples(
                "orders",
                vec![Tuple::of((1, 50)), Tuple::of((2, 150)), Tuple::of((3, 500))],
            )
            .build();
        assert!(e.execute(&tx).unwrap().committed());
        assert_eq!(e.relation("big_orders").unwrap().len(), 2);

        // Delete one big order; the view follows.
        let tx = TransactionBuilder::new()
            .delete_tuple("orders", Tuple::of((3, 500)))
            .build();
        assert!(e.execute(&tx).unwrap().committed());
        let view = e.relation("big_orders").unwrap();
        assert_eq!(view.len(), 1);
        assert!(view.contains(&Tuple::of((2, 150))));
    }

    #[test]
    fn full_refresh_view_maintained() {
        let mut e = Engine::new(schema());
        e.define_view(ViewDef::new(
            "order_ids",
            RelExpr::relation("orders").project_cols(&[0]),
        ))
        .unwrap();
        let tx = TransactionBuilder::new()
            .insert_tuples("orders", vec![Tuple::of((7, 10)), Tuple::of((8, 20))])
            .build();
        assert!(e.execute(&tx).unwrap().committed());
        let view = e.relation("order_ids").unwrap();
        assert_eq!(view.len(), 2);
        assert!(view.contains(&Tuple::of((7,))));
    }

    #[test]
    fn view_errors() {
        let v = ViewDef::new("nosuch", RelExpr::relation("orders"));
        assert!(matches!(
            v.maintenance_rule(&schema()),
            Err(EngineError::View(_))
        ));
        let v = ViewDef::new("big_orders", RelExpr::relation("big_orders"));
        assert!(matches!(
            v.maintenance_rule(&schema()),
            Err(EngineError::View(_))
        ));
        let v = ViewDef::new("big_orders", RelExpr::Literal(vec![]));
        assert!(matches!(
            v.maintenance_rule(&schema()),
            Err(EngineError::View(_))
        ));
    }

    #[test]
    fn failed_view_definition_rolls_back_rule_and_view() {
        // The initial materialization divides by the id column; a zero id
        // makes it abort with a runtime error. The maintenance rule and
        // the view registration must both be rolled back — before the
        // fix, the leftover rule poisoned every later transaction that
        // touched `orders`.
        let mut e = Engine::new(schema());
        e.load("orders", vec![Tuple::of((0, 10))]).unwrap();
        let bad = ViewDef::new(
            "order_ids",
            RelExpr::relation("orders").project(vec![ScalarExpr::arith(
                tm_algebra::ArithOp::Div,
                ScalarExpr::col(1),
                ScalarExpr::col(0),
            )]),
        );
        let err = e.define_view(bad).unwrap_err();
        assert!(matches!(err, EngineError::View(_)));
        assert!(
            e.catalog().rule("view$order_ids").is_none(),
            "maintenance rule must be rolled back"
        );
        // Later transactions on the source relation are unaffected.
        let tx = TransactionBuilder::new()
            .insert_tuple("orders", Tuple::of((1, 20)))
            .build();
        assert!(e.execute(&tx).unwrap().committed());
        // And the view relation can still be defined correctly afterwards.
        e.define_view(ViewDef::new(
            "order_ids",
            RelExpr::relation("orders").project_cols(&[0]),
        ))
        .unwrap();
        assert_eq!(e.relation("order_ids").unwrap().len(), 2);
    }

    #[test]
    fn view_interacts_with_constraints() {
        // A constraint on the *view* is enforced through the maintenance
        // chain: INS(orders) → view refresh → INS(big_orders) → check.
        let mut e = Engine::new(schema());
        e.define_view(big_orders_view()).unwrap();
        e.define_constraint("few_big", "CNT(big_orders) <= 1")
            .unwrap();
        let tx = TransactionBuilder::new()
            .insert_tuples("orders", vec![Tuple::of((1, 200))])
            .build();
        assert!(e.execute(&tx).unwrap().committed());
        let tx = TransactionBuilder::new()
            .insert_tuples("orders", vec![Tuple::of((2, 300))])
            .build();
        let out = e.execute(&tx).unwrap();
        assert!(!out.committed(), "second big order must violate few_big");
        assert_eq!(e.relation("orders").unwrap().len(), 1);
        assert_eq!(e.relation("big_orders").unwrap().len(), 1);
    }
}
