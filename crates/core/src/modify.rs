//! The transaction modification algorithms (Algorithms 5.1–5.3 and 6.2).
//!
//! Algorithm 5.1 defines modification declaratively:
//!
//! ```text
//! ModT(T, J) = ModP(T↓, J)↑
//! ModP(P, J) = P                         if TrigP(P, J) = Pε
//!            = P ⊕ ModP(TrigP(P, J), J)  otherwise
//! TrigP(P, J) = TrOptRS(SelRS(P, J))
//! ```
//!
//! `SelRS` selects the rules whose trigger sets intersect the update types
//! of `P` (via `GetTrigP`); `TrOptRS` optimizes + translates them into one
//! concatenated program. With statically compiled integrity programs
//! (Section 6.2) `TrigP` becomes `ConcatP(SelPS(P, K))`, skipping
//! translation at enforcement time; the differential variant selects a
//! delta-specialized program per matched trigger.
//!
//! The recursion terminates when a round triggers nothing. A round budget
//! guards against rule sets with triggering cycles (which Definition 6.1's
//! validation reports at definition time, but the engine can be configured
//! to admit).

use std::collections::BTreeSet;
use std::fmt;

use tm_algebra::{Program, Statement, Transaction};
use tm_analyze::CatalogAnalysis;
use tm_relational::DatabaseSchema;
use tm_rules::{gentrig::get_trig_px, IntegrityRule, TriggerIndex, TriggerSet};
use tm_translate::{specialize_check, trans_r, ConditionShape, SpecializedCheck, TemplateDeltas};

use crate::error::{EngineError, Result};
use crate::programs::IntegrityProgram;

/// How triggered programs are obtained during modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// Rules are translated at enforcement time (`TrOptRS`,
    /// Algorithm 5.3) — the baseline the paper improves on in §6.2.
    Dynamic,
    /// Statically compiled integrity programs (`SelPS`/`ConcatP`,
    /// Algorithm 6.2).
    Static,
    /// Statically compiled per-trigger differential programs (§5.2.1).
    Differential,
}

/// Statistics of one `ModT` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModificationTrace {
    /// Fixpoint rounds executed (0 = transaction triggered nothing).
    pub rounds: usize,
    /// Names of the rules selected, in append order (duplicates possible
    /// across rounds).
    pub rules_fired: Vec<String>,
    /// Statements appended to the user transaction.
    pub statements_appended: usize,
    /// Rules translated at enforcement time (Dynamic mode only).
    pub rules_translated: usize,
}

/// The provenance of one rule selection after specialization: what the
/// specializer did with the check, and why.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecOutcome {
    /// The template provably cannot violate this rule — the check was
    /// omitted from the plan, with the recorded proof.
    Dropped {
        /// Why the check cannot fire against this template.
        proof: String,
    },
    /// The check was reduced to per-row point checks/probes.
    Probe {
        /// Number of probe statements that replaced the generic check.
        statements: usize,
    },
    /// The generic check was kept (no sound reduction applied, or
    /// specialization is disabled).
    Generic,
}

/// One rule selection with its specialization provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpecialization {
    /// The selection name (rule name; `name[trigger]` in Differential
    /// mode).
    pub rule: String,
    /// What the specializer decided.
    pub outcome: SpecOutcome,
    /// Statements this selection appended to the template (0 for dropped
    /// checks). Decisions are recorded in append order, so these counts
    /// partition the appended region of the modified transaction — the
    /// metrics sink uses them to attribute per-check timings to rules.
    pub appended: usize,
}

/// The specialization record of one `ModT` run: which catalog rules were
/// never selected (relevance filtering), and per selection whether the
/// check was dropped, reduced to probes, or kept generic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecializationReport {
    /// Whether weakest-precondition specialization ran (false: disabled
    /// or `Off` mode; relevance filtering still applies whenever rule
    /// selection does).
    pub enabled: bool,
    /// Catalog size at modification time.
    pub catalog_rules: usize,
    /// Rules the template's updates can never trigger — filtered out by
    /// trigger relevance without ever being looked at.
    pub untriggered: usize,
    /// Per-selection decisions, in append order (a rule selected in
    /// several rounds or for several triggers appears once per selection).
    pub decisions: Vec<RuleSpecialization>,
}

impl SpecializationReport {
    /// Selections whose checks were dropped with a proof.
    pub fn dropped(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.outcome, SpecOutcome::Dropped { .. }))
            .count()
    }

    /// Selections reduced to point checks/probes.
    pub fn probed(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.outcome, SpecOutcome::Probe { .. }))
            .count()
    }

    /// Selections that kept their generic program.
    pub fn generic(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d.outcome, SpecOutcome::Generic))
            .count()
    }

    /// Collapse the report into per-execution check counts.
    pub fn summary(&self) -> CheckSummary {
        CheckSummary {
            skipped: self.untriggered + self.dropped(),
            probed: self.probed(),
            evaluated: self.generic(),
        }
    }
}

impl fmt::Display for SpecializationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rule(s): {} untriggered, {} dropped, {} probed, {} generic",
            self.catalog_rules,
            self.untriggered,
            self.dropped(),
            self.probed(),
            self.generic()
        )
    }
}

/// Per-execution rule-check accounting, derived from the specialization
/// report: how many catalog rules were skipped outright (untriggered or
/// dropped with a proof), reduced to point probes, or evaluated
/// generically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Rules that cost nothing at execution: never triggered by the
    /// template, or dropped by a weakest-precondition proof.
    pub skipped: usize,
    /// Checks reduced to per-row point checks/probes.
    pub probed: usize,
    /// Checks evaluated via their generic program.
    pub evaluated: usize,
}

/// Everything one `ModT` run selects against: the mode, the rule catalog's
/// parallel vectors, and the optional specialization inputs (trigger index
/// for O(affected) selection, condition shapes for weakest-precondition
/// reduction). Build one per catalog state and call [`mod_t_with`].
#[derive(Debug, Clone, Copy)]
pub struct ModContext<'a> {
    /// How triggered programs are obtained.
    pub mode: SelectionMode,
    /// Declared rules (used by `Dynamic`).
    pub rules: &'a [IntegrityRule],
    /// Compiled programs (used by `Static`/`Differential`).
    pub programs: &'a [IntegrityProgram],
    /// The database schema.
    pub schema: &'a DatabaseSchema,
    /// Round budget for the `ModP` recursion.
    pub max_rounds: usize,
    /// Inverted trigger index over the catalog (positions must match
    /// `rules`/`programs`). `None` falls back to a linear scan.
    pub index: Option<&'a TriggerIndex>,
    /// Per-rule condition shapes (positions must match). `Some` enables
    /// weakest-precondition specialization of single-`alarm` checks.
    pub shapes: Option<&'a [ConditionShape]>,
    /// The catalog's static analysis (positions must match). `Some`
    /// enables semantic triggering-graph refinement: recursion rounds
    /// skip selections reachable only over proven-false edges, and a
    /// certified catalog replaces the runtime round budget with a
    /// structural debug assertion.
    pub analysis: Option<&'a CatalogAnalysis>,
}

impl<'a> ModContext<'a> {
    /// A plain context: no index, no specialization.
    pub fn basic(
        mode: SelectionMode,
        rules: &'a [IntegrityRule],
        programs: &'a [IntegrityProgram],
        schema: &'a DatabaseSchema,
        max_rounds: usize,
    ) -> ModContext<'a> {
        ModContext {
            mode,
            rules,
            programs,
            schema,
            max_rounds,
            index: None,
            shapes: None,
            analysis: None,
        }
    }

    /// The catalog trigger set of the rule at `idx`.
    fn rule_triggers(&self, idx: usize) -> &'a TriggerSet {
        match self.mode {
            SelectionMode::Dynamic => self.rules[idx].triggers(),
            SelectionMode::Static | SelectionMode::Differential => self.programs[idx].triggers(),
        }
    }

    fn catalog_len(&self) -> usize {
        match self.mode {
            SelectionMode::Dynamic => self.rules.len(),
            SelectionMode::Static | SelectionMode::Differential => self.programs.len(),
        }
    }
}

/// One selected program together with its triggering metadata for the next
/// recursion round.
struct SelectedProgram {
    name: String,
    /// Catalog position of the originating rule.
    rule_idx: usize,
    program: Program,
    non_triggering: bool,
}

/// Internal: one modification round — `TrigP(P, J)`.
///
/// With a trigger index the candidate positions come from one inverted
/// lookup (O(|frontier| + |affected|)); without one, from a linear scan.
/// Either way the selection order is catalog order, so the two paths
/// produce identical modified transactions.
fn trig_p(
    frontier_triggers: &TriggerSet,
    ctx: &ModContext<'_>,
    trace: &mut ModificationTrace,
) -> Result<Vec<SelectedProgram>> {
    let candidates: Vec<usize> = match ctx.index {
        Some(index) => index.candidates(frontier_triggers),
        None => {
            let sets: Vec<&TriggerSet> = match ctx.mode {
                SelectionMode::Dynamic => ctx.rules.iter().map(|r| r.triggers()).collect(),
                _ => ctx.programs.iter().map(|k| k.triggers()).collect(),
            };
            sets.iter()
                .enumerate()
                .filter(|(_, s)| s.intersects(frontier_triggers))
                .map(|(i, _)| i)
                .collect()
        }
    };
    let mut selected = Vec::new();
    match ctx.mode {
        SelectionMode::Dynamic => {
            // SelRS + TrOptRS: select by trigger intersection, then
            // optimize + translate now.
            for i in candidates {
                let t = trans_r(&ctx.rules[i], ctx.schema)?;
                trace.rules_translated += 1;
                selected.push(SelectedProgram {
                    name: t.name,
                    rule_idx: i,
                    program: t.program,
                    non_triggering: t.non_triggering,
                });
            }
        }
        SelectionMode::Static => {
            // SelPS + ConcatP over precompiled programs.
            for i in candidates {
                let k = &ctx.programs[i];
                selected.push(SelectedProgram {
                    name: k.name.clone(),
                    rule_idx: i,
                    program: k.program.clone(),
                    non_triggering: k.non_triggering,
                });
            }
        }
        SelectionMode::Differential => {
            // Per-trigger selection: a rule contributes one specialized
            // program per matched trigger.
            for i in candidates {
                let k = &ctx.programs[i];
                for t in k.triggers().iter() {
                    if frontier_triggers.contains(t) {
                        selected.push(SelectedProgram {
                            name: format!("{}[{}]", k.name, t),
                            rule_idx: i,
                            program: k.program_for_trigger(t).clone(),
                            non_triggering: k.non_triggering,
                        });
                    }
                }
            }
        }
    }
    Ok(selected)
}

/// Whether a check program is eligible for per-template specialization: a
/// single `alarm` statement (every aborting check the translator emits).
/// Compensating actions and multi-statement programs always run generic.
fn single_alarm(program: &Program) -> bool {
    program.len() == 1 && matches!(program.statements().first(), Some(Statement::Alarm(_)))
}

/// `ModT` (Algorithm 5.1) over a [`ModContext`]: modify a transaction and
/// report both the modification trace and the specialization provenance.
///
/// When `ctx.shapes` is set, every selected single-`alarm` check is pushed
/// through [`specialize_check`] against the template's differentials *at
/// its append point* (statements appended by earlier selections are
/// visible to later ones, matching execution order): checks provably
/// unviolable are dropped, reducible ones become per-row point probes,
/// the rest stay generic. Dropped and probed checks are alarm-only, so
/// the rewrite never changes the triggering frontier of the next round.
pub fn mod_t_with(
    tx: &Transaction,
    ctx: &ModContext<'_>,
) -> Result<(Transaction, ModificationTrace, SpecializationReport)> {
    let mut trace = ModificationTrace::default();
    // T↓ — debracket.
    let mut result = tx.debracket().clone();
    // Track the template's per-relation differentials only when
    // specialization is on.
    let mut deltas = ctx.shapes.map(|_| {
        let mut d = TemplateDeltas::new();
        for s in result.statements() {
            d.observe(s);
        }
        d
    });
    // The first frontier is the user program itself (always triggering).
    let mut frontier_triggers = get_trig_px(&result, false);
    let mut decisions = Vec::new();
    let mut selected_rules: BTreeSet<usize> = BTreeSet::new();
    // The selections appended in the previous round, with the triggers
    // their programs actually fire — the *origins* of the current
    // frontier. `None` in round 1: the user transaction is never
    // refined away.
    let mut last_round: Option<Vec<(usize, TriggerSet)>> = None;

    loop {
        if frontier_triggers.is_empty() {
            break;
        }
        let mut selected = trig_p(&frontier_triggers, ctx, &mut trace)?;
        // Semantic refinement: drop a selection when every origin that
        // could have triggered it reaches it only over an edge the
        // catalog analysis proved false (the origin's action cannot
        // violate its condition). Recorded as a dropped decision, like
        // the weakest-precondition drops of per-template
        // specialization.
        if let (Some(analysis), Some(origins)) = (ctx.analysis, last_round.as_ref()) {
            selected.retain(|s| {
                let rule_triggers = ctx.rule_triggers(s.rule_idx);
                let skip = origins
                    .iter()
                    .filter(|(_, fired)| fired.intersects(rule_triggers))
                    .all(|(origin, _)| analysis.edge_pruned(*origin, s.rule_idx));
                if skip {
                    selected_rules.insert(s.rule_idx);
                    decisions.push(RuleSpecialization {
                        rule: s.name.clone(),
                        outcome: SpecOutcome::Dropped {
                            proof: "semantic refinement: every triggering edge into this rule \
                                    from the previous round is proven false"
                                .to_string(),
                        },
                        appended: 0,
                    });
                }
                !skip
            });
        }
        if selected.is_empty() {
            break;
        }
        trace.rounds += 1;
        if ctx.analysis.is_some_and(|a| a.certified()) {
            // Certified catalog: the refined triggering graph is
            // acyclic, so every surviving selection chain follows a
            // refined path and the recursion depth is structurally
            // bounded — the configured round budget is unreachable and
            // is demoted to a debug assertion.
            debug_assert!(
                trace.rounds <= ctx.catalog_len() + 1,
                "certified catalog exceeded its structural round bound"
            );
        } else if trace.rounds > ctx.max_rounds {
            return Err(EngineError::ModificationDiverged {
                rounds: ctx.max_rounds,
                cycle: ctx
                    .analysis
                    .map(|a| a.first_refined_cycle())
                    .unwrap_or_default(),
            });
        }
        // Compute the next frontier's triggers before consuming programs.
        // Specialization only rewrites alarm-only programs (which trigger
        // nothing), so the original programs give the same frontier.
        let mut next_triggers = TriggerSet::empty();
        let mut origins = Vec::with_capacity(selected.len());
        for s in &selected {
            let fired = get_trig_px(&s.program, s.non_triggering);
            next_triggers = next_triggers.union(fired.clone());
            origins.push((s.rule_idx, fired));
        }
        last_round = Some(origins);
        // P ⊕ ConcatP(selected), specializing each check in place.
        for s in selected {
            selected_rules.insert(s.rule_idx);
            let specialized = match (deltas.as_ref(), ctx.shapes) {
                (Some(d), Some(shapes)) if single_alarm(&s.program) => shapes
                    .get(s.rule_idx)
                    .map(|shape| specialize_check(shape, d, ctx.schema)),
                _ => None,
            };
            match specialized {
                Some(SpecializedCheck::Dropped { proof }) => {
                    decisions.push(RuleSpecialization {
                        rule: s.name,
                        outcome: SpecOutcome::Dropped { proof },
                        appended: 0,
                    });
                    // Nothing appended: the check cannot fire.
                }
                Some(SpecializedCheck::Probe { statements }) => {
                    trace.statements_appended += statements.len();
                    trace.rules_fired.push(s.name.clone());
                    decisions.push(RuleSpecialization {
                        rule: s.name,
                        outcome: SpecOutcome::Probe {
                            statements: statements.len(),
                        },
                        appended: statements.len(),
                    });
                    if let Some(d) = deltas.as_mut() {
                        for st in &statements {
                            d.observe(st);
                        }
                    }
                    result = result.concat(Program::new(statements));
                }
                Some(SpecializedCheck::Generic) | None => {
                    trace.statements_appended += s.program.len();
                    trace.rules_fired.push(s.name.clone());
                    decisions.push(RuleSpecialization {
                        rule: s.name,
                        outcome: SpecOutcome::Generic,
                        appended: s.program.len(),
                    });
                    if let Some(d) = deltas.as_mut() {
                        for st in s.program.statements() {
                            d.observe(st);
                        }
                    }
                    result = result.concat(s.program);
                }
            }
        }
        frontier_triggers = next_triggers;
    }
    let catalog_rules = ctx.catalog_len();
    let report = SpecializationReport {
        enabled: ctx.shapes.is_some(),
        catalog_rules,
        untriggered: catalog_rules - selected_rules.len(),
        decisions,
    };
    // ↑ — rebracket.
    Ok((result.bracket(), trace, report))
}

/// `ModT` (Algorithm 5.1): modify a transaction with respect to a rule set
/// (Dynamic mode) or a compiled program set (Static/Differential modes).
///
/// Returns the modified transaction and the modification trace. This is
/// the plain entry point — no trigger index, no specialization; see
/// [`mod_t_with`] for both.
pub fn mod_t(
    tx: &Transaction,
    mode: SelectionMode,
    rules: &[IntegrityRule],
    programs: &[IntegrityProgram],
    schema: &DatabaseSchema,
    max_rounds: usize,
) -> Result<(Transaction, ModificationTrace)> {
    let ctx = ModContext::basic(mode, rules, programs, schema, max_rounds);
    mod_t_with(tx, &ctx).map(|(modified, trace, _)| (modified, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::builder::TransactionBuilder;
    use tm_relational::schema::beer_schema;
    use tm_relational::Tuple;
    use tm_rules::parse_rule;

    fn rules() -> Vec<IntegrityRule> {
        vec![
            parse_rule(
                "IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
                "r1",
            )
            .unwrap(),
            parse_rule(
                "IF NOT forall x (x in beer implies \
                 exists y (y in brewery and x.brewery = y.name)) \
                 THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                      insert(brewery, project[#0, null, null](temp))",
                "r2",
            )
            .unwrap(),
        ]
    }

    fn compiled(differential: bool) -> Vec<IntegrityProgram> {
        rules()
            .iter()
            .map(|r| crate::programs::get_int_p(r, &beer_schema(), differential).unwrap())
            .collect()
    }

    fn example_51_tx() -> Transaction {
        TransactionBuilder::new()
            .insert_tuple(
                "beer",
                Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
            )
            .build()
    }

    #[test]
    fn example_5_1_dynamic_modification() {
        let schema = beer_schema();
        let rs = rules();
        let (modified, trace) = mod_t(
            &example_51_tx(),
            SelectionMode::Dynamic,
            &rs,
            &[],
            &schema,
            32,
        )
        .unwrap();
        // Paper Example 5.1: insert + alarm (R1) + two compensation
        // statements (R2) = 4 statements.
        assert_eq!(modified.len(), 4);
        let rendered = modified.to_string();
        assert!(rendered.contains("insert(beer"), "{rendered}");
        assert!(
            rendered.contains("alarm(select[(#3 < 0)](beer))"),
            "{rendered}"
        );
        assert!(rendered.contains("temp := "), "{rendered}");
        assert!(rendered.contains("insert(brewery"), "{rendered}");
        // R2's compensation inserts into brewery; no rule watches
        // INS(brewery), so exactly one round happens... but the paper's
        // recursion continues until the frontier triggers nothing.
        assert_eq!(trace.rounds, 1);
        assert_eq!(trace.rules_fired, vec!["r1".to_owned(), "r2".to_owned()]);
        assert_eq!(trace.rules_translated, 2);
    }

    #[test]
    fn static_mode_matches_dynamic_output() {
        let schema = beer_schema();
        let rs = rules();
        let ks = compiled(false);
        let (dynamic, _) = mod_t(
            &example_51_tx(),
            SelectionMode::Dynamic,
            &rs,
            &[],
            &schema,
            32,
        )
        .unwrap();
        let (statik, trace) = mod_t(
            &example_51_tx(),
            SelectionMode::Static,
            &[],
            &ks,
            &schema,
            32,
        )
        .unwrap();
        assert_eq!(dynamic, statik);
        assert_eq!(trace.rules_translated, 0); // no enforcement-time translation
    }

    #[test]
    fn differential_mode_uses_delta_checks() {
        let schema = beer_schema();
        let ks = compiled(true);
        let (modified, _) = mod_t(
            &example_51_tx(),
            SelectionMode::Differential,
            &[],
            &ks,
            &schema,
            32,
        )
        .unwrap();
        let rendered = modified.to_string();
        assert!(rendered.contains("beer@ins"), "{rendered}");
    }

    #[test]
    fn non_update_transaction_unmodified() {
        let schema = beer_schema();
        let rs = rules();
        let tx = TransactionBuilder::new()
            .assign("t", tm_algebra::RelExpr::relation("beer"))
            .build();
        let (modified, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 32).unwrap();
        assert_eq!(modified, tx);
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn untriggered_updates_unmodified() {
        let schema = beer_schema();
        let rs = rules();
        // Deleting beers triggers neither rule (r1: INS(beer); r2:
        // INS(beer), DEL(brewery)).
        let tx = TransactionBuilder::new()
            .delete_where("beer", tm_algebra::ScalarExpr::true_())
            .build();
        let (modified, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 32).unwrap();
        assert_eq!(modified, tx);
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn recursion_follows_compensation_chains() {
        let schema = tm_relational::DatabaseSchema::from_relations(vec![
            tm_relational::RelationSchema::of("a", &[("x", tm_relational::ValueType::Int)]),
            tm_relational::RelationSchema::of("b", &[("x", tm_relational::ValueType::Int)]),
            tm_relational::RelationSchema::of("c", &[("x", tm_relational::ValueType::Int)]),
        ])
        .unwrap();
        let rs = vec![
            parse_rule("WHEN INS(a) IF NOT 1 = 1 THEN insert(b, a@ins)", "a_to_b").unwrap(),
            parse_rule("WHEN INS(b) IF NOT 1 = 1 THEN insert(c, b@ins)", "b_to_c").unwrap(),
        ];
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1,)))
            .build();
        let (modified, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 32).unwrap();
        assert_eq!(trace.rounds, 2);
        assert_eq!(
            trace.rules_fired,
            vec!["a_to_b".to_owned(), "b_to_c".to_owned()]
        );
        assert_eq!(modified.len(), 3);
    }

    #[test]
    fn cyclic_rules_hit_round_budget() {
        let schema =
            tm_relational::DatabaseSchema::from_relations(vec![tm_relational::RelationSchema::of(
                "a",
                &[("x", tm_relational::ValueType::Int)],
            )])
            .unwrap();
        let rs =
            vec![parse_rule("WHEN INS(a) IF NOT 1 = 1 THEN insert(a, {(1)})", "loop").unwrap()];
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1,)))
            .build();
        let err = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 8).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ModificationDiverged { rounds: 8, .. }
        ));
    }

    #[test]
    fn non_triggering_action_stops_recursion() {
        let schema =
            tm_relational::DatabaseSchema::from_relations(vec![tm_relational::RelationSchema::of(
                "a",
                &[("x", tm_relational::ValueType::Int)],
            )])
            .unwrap();
        let rs = vec![parse_rule(
            "WHEN INS(a) IF NOT 1 = 1 THEN insert(a, {(1)}) NON-TRIGGERING",
            "fix",
        )
        .unwrap()];
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1,)))
            .build();
        let (_, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 8).unwrap();
        assert_eq!(trace.rounds, 1);
    }
}
