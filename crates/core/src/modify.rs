//! The transaction modification algorithms (Algorithms 5.1–5.3 and 6.2).
//!
//! Algorithm 5.1 defines modification declaratively:
//!
//! ```text
//! ModT(T, J) = ModP(T↓, J)↑
//! ModP(P, J) = P                         if TrigP(P, J) = Pε
//!            = P ⊕ ModP(TrigP(P, J), J)  otherwise
//! TrigP(P, J) = TrOptRS(SelRS(P, J))
//! ```
//!
//! `SelRS` selects the rules whose trigger sets intersect the update types
//! of `P` (via `GetTrigP`); `TrOptRS` optimizes + translates them into one
//! concatenated program. With statically compiled integrity programs
//! (Section 6.2) `TrigP` becomes `ConcatP(SelPS(P, K))`, skipping
//! translation at enforcement time; the differential variant selects a
//! delta-specialized program per matched trigger.
//!
//! The recursion terminates when a round triggers nothing. A round budget
//! guards against rule sets with triggering cycles (which Definition 6.1's
//! validation reports at definition time, but the engine can be configured
//! to admit).

use tm_algebra::{Program, Transaction};
use tm_relational::DatabaseSchema;
use tm_rules::{gentrig::get_trig_px, IntegrityRule, TriggerSet};
use tm_translate::trans_r;

use crate::error::{EngineError, Result};
use crate::programs::IntegrityProgram;

/// How triggered programs are obtained during modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// Rules are translated at enforcement time (`TrOptRS`,
    /// Algorithm 5.3) — the baseline the paper improves on in §6.2.
    Dynamic,
    /// Statically compiled integrity programs (`SelPS`/`ConcatP`,
    /// Algorithm 6.2).
    Static,
    /// Statically compiled per-trigger differential programs (§5.2.1).
    Differential,
}

/// Statistics of one `ModT` run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModificationTrace {
    /// Fixpoint rounds executed (0 = transaction triggered nothing).
    pub rounds: usize,
    /// Names of the rules selected, in append order (duplicates possible
    /// across rounds).
    pub rules_fired: Vec<String>,
    /// Statements appended to the user transaction.
    pub statements_appended: usize,
    /// Rules translated at enforcement time (Dynamic mode only).
    pub rules_translated: usize,
}

/// One selected program together with its triggering metadata for the next
/// recursion round.
struct SelectedProgram {
    name: String,
    program: Program,
    non_triggering: bool,
}

/// Internal: one modification round — `TrigP(P, J)`.
fn trig_p(
    frontier_triggers: &TriggerSet,
    mode: SelectionMode,
    rules: &[IntegrityRule],
    programs: &[IntegrityProgram],
    schema: &DatabaseSchema,
    trace: &mut ModificationTrace,
) -> Result<Vec<SelectedProgram>> {
    let mut selected = Vec::new();
    match mode {
        SelectionMode::Dynamic => {
            // SelRS + TrOptRS: select by trigger intersection, then
            // optimize + translate now.
            for rule in rules {
                if rule.triggers().intersects(frontier_triggers) {
                    let t = trans_r(rule, schema)?;
                    trace.rules_translated += 1;
                    selected.push(SelectedProgram {
                        name: t.name,
                        program: t.program,
                        non_triggering: t.non_triggering,
                    });
                }
            }
        }
        SelectionMode::Static => {
            // SelPS + ConcatP over precompiled programs.
            for k in programs {
                if k.triggers().intersects(frontier_triggers) {
                    selected.push(SelectedProgram {
                        name: k.name.clone(),
                        program: k.program.clone(),
                        non_triggering: k.non_triggering,
                    });
                }
            }
        }
        SelectionMode::Differential => {
            // Per-trigger selection: a rule contributes one specialized
            // program per matched trigger.
            for k in programs {
                for t in k.triggers().iter() {
                    if frontier_triggers.contains(t) {
                        selected.push(SelectedProgram {
                            name: format!("{}[{}]", k.name, t),
                            program: k.program_for_trigger(t).clone(),
                            non_triggering: k.non_triggering,
                        });
                    }
                }
            }
        }
    }
    Ok(selected)
}

/// `ModT` (Algorithm 5.1): modify a transaction with respect to a rule set
/// (Dynamic mode) or a compiled program set (Static/Differential modes).
///
/// Returns the modified transaction and the modification trace.
pub fn mod_t(
    tx: &Transaction,
    mode: SelectionMode,
    rules: &[IntegrityRule],
    programs: &[IntegrityProgram],
    schema: &DatabaseSchema,
    max_rounds: usize,
) -> Result<(Transaction, ModificationTrace)> {
    let mut trace = ModificationTrace::default();
    // T↓ — debracket.
    let mut result = tx.debracket().clone();
    // The first frontier is the user program itself (always triggering).
    let mut frontier_triggers = get_trig_px(&result, false);

    loop {
        if frontier_triggers.is_empty() {
            break;
        }
        let selected = trig_p(
            &frontier_triggers,
            mode,
            rules,
            programs,
            schema,
            &mut trace,
        )?;
        if selected.is_empty() {
            break;
        }
        trace.rounds += 1;
        if trace.rounds > max_rounds {
            return Err(EngineError::ModificationDiverged { rounds: max_rounds });
        }
        // Compute the next frontier's triggers before consuming programs.
        let mut next_triggers = TriggerSet::empty();
        for s in &selected {
            next_triggers = next_triggers.union(get_trig_px(&s.program, s.non_triggering));
        }
        // P ⊕ ConcatP(selected).
        for s in selected {
            trace.statements_appended += s.program.len();
            trace.rules_fired.push(s.name);
            result = result.concat(s.program);
        }
        frontier_triggers = next_triggers;
    }
    // ↑ — rebracket.
    Ok((result.bracket(), trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::builder::TransactionBuilder;
    use tm_relational::schema::beer_schema;
    use tm_relational::Tuple;
    use tm_rules::parse_rule;

    fn rules() -> Vec<IntegrityRule> {
        vec![
            parse_rule(
                "IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
                "r1",
            )
            .unwrap(),
            parse_rule(
                "IF NOT forall x (x in beer implies \
                 exists y (y in brewery and x.brewery = y.name)) \
                 THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                      insert(brewery, project[#0, null, null](temp))",
                "r2",
            )
            .unwrap(),
        ]
    }

    fn compiled(differential: bool) -> Vec<IntegrityProgram> {
        rules()
            .iter()
            .map(|r| crate::programs::get_int_p(r, &beer_schema(), differential).unwrap())
            .collect()
    }

    fn example_51_tx() -> Transaction {
        TransactionBuilder::new()
            .insert_tuple(
                "beer",
                Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
            )
            .build()
    }

    #[test]
    fn example_5_1_dynamic_modification() {
        let schema = beer_schema();
        let rs = rules();
        let (modified, trace) = mod_t(
            &example_51_tx(),
            SelectionMode::Dynamic,
            &rs,
            &[],
            &schema,
            32,
        )
        .unwrap();
        // Paper Example 5.1: insert + alarm (R1) + two compensation
        // statements (R2) = 4 statements.
        assert_eq!(modified.len(), 4);
        let rendered = modified.to_string();
        assert!(rendered.contains("insert(beer"), "{rendered}");
        assert!(
            rendered.contains("alarm(select[(#3 < 0)](beer))"),
            "{rendered}"
        );
        assert!(rendered.contains("temp := "), "{rendered}");
        assert!(rendered.contains("insert(brewery"), "{rendered}");
        // R2's compensation inserts into brewery; no rule watches
        // INS(brewery), so exactly one round happens... but the paper's
        // recursion continues until the frontier triggers nothing.
        assert_eq!(trace.rounds, 1);
        assert_eq!(trace.rules_fired, vec!["r1".to_owned(), "r2".to_owned()]);
        assert_eq!(trace.rules_translated, 2);
    }

    #[test]
    fn static_mode_matches_dynamic_output() {
        let schema = beer_schema();
        let rs = rules();
        let ks = compiled(false);
        let (dynamic, _) = mod_t(
            &example_51_tx(),
            SelectionMode::Dynamic,
            &rs,
            &[],
            &schema,
            32,
        )
        .unwrap();
        let (statik, trace) = mod_t(
            &example_51_tx(),
            SelectionMode::Static,
            &[],
            &ks,
            &schema,
            32,
        )
        .unwrap();
        assert_eq!(dynamic, statik);
        assert_eq!(trace.rules_translated, 0); // no enforcement-time translation
    }

    #[test]
    fn differential_mode_uses_delta_checks() {
        let schema = beer_schema();
        let ks = compiled(true);
        let (modified, _) = mod_t(
            &example_51_tx(),
            SelectionMode::Differential,
            &[],
            &ks,
            &schema,
            32,
        )
        .unwrap();
        let rendered = modified.to_string();
        assert!(rendered.contains("beer@ins"), "{rendered}");
    }

    #[test]
    fn non_update_transaction_unmodified() {
        let schema = beer_schema();
        let rs = rules();
        let tx = TransactionBuilder::new()
            .assign("t", tm_algebra::RelExpr::relation("beer"))
            .build();
        let (modified, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 32).unwrap();
        assert_eq!(modified, tx);
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn untriggered_updates_unmodified() {
        let schema = beer_schema();
        let rs = rules();
        // Deleting beers triggers neither rule (r1: INS(beer); r2:
        // INS(beer), DEL(brewery)).
        let tx = TransactionBuilder::new()
            .delete_where("beer", tm_algebra::ScalarExpr::true_())
            .build();
        let (modified, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 32).unwrap();
        assert_eq!(modified, tx);
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn recursion_follows_compensation_chains() {
        let schema = tm_relational::DatabaseSchema::from_relations(vec![
            tm_relational::RelationSchema::of("a", &[("x", tm_relational::ValueType::Int)]),
            tm_relational::RelationSchema::of("b", &[("x", tm_relational::ValueType::Int)]),
            tm_relational::RelationSchema::of("c", &[("x", tm_relational::ValueType::Int)]),
        ])
        .unwrap();
        let rs = vec![
            parse_rule("WHEN INS(a) IF NOT 1 = 1 THEN insert(b, a@ins)", "a_to_b").unwrap(),
            parse_rule("WHEN INS(b) IF NOT 1 = 1 THEN insert(c, b@ins)", "b_to_c").unwrap(),
        ];
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1,)))
            .build();
        let (modified, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 32).unwrap();
        assert_eq!(trace.rounds, 2);
        assert_eq!(
            trace.rules_fired,
            vec!["a_to_b".to_owned(), "b_to_c".to_owned()]
        );
        assert_eq!(modified.len(), 3);
    }

    #[test]
    fn cyclic_rules_hit_round_budget() {
        let schema =
            tm_relational::DatabaseSchema::from_relations(vec![tm_relational::RelationSchema::of(
                "a",
                &[("x", tm_relational::ValueType::Int)],
            )])
            .unwrap();
        let rs =
            vec![parse_rule("WHEN INS(a) IF NOT 1 = 1 THEN insert(a, {(1)})", "loop").unwrap()];
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1,)))
            .build();
        let err = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 8).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ModificationDiverged { rounds: 8 }
        ));
    }

    #[test]
    fn non_triggering_action_stops_recursion() {
        let schema =
            tm_relational::DatabaseSchema::from_relations(vec![tm_relational::RelationSchema::of(
                "a",
                &[("x", tm_relational::ValueType::Int)],
            )])
            .unwrap();
        let rs = vec![parse_rule(
            "WHEN INS(a) IF NOT 1 = 1 THEN insert(a, {(1)}) NON-TRIGGERING",
            "fix",
        )
        .unwrap()];
        let tx = TransactionBuilder::new()
            .insert_tuple("a", Tuple::of((1,)))
            .build();
        let (_, trace) = mod_t(&tx, SelectionMode::Dynamic, &rs, &[], &schema, 8).unwrap();
        assert_eq!(trace.rounds, 1);
    }
}
