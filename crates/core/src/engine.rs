//! The integrated transaction modification engine.
//!
//! [`Engine`] owns a database state, an integrity [`Catalog`], and an
//! [`EngineConfig`]; every transaction submitted through
//! [`Engine::execute`] passes through `ModT` (per the configured
//! [`EnforcementMode`]) before it runs on the main-memory executor of
//! `tm-algebra`.

use std::borrow::Cow;
use std::fmt;

use tm_algebra::{CheckTimings, ExecStats, Executor, Transaction, TxOutcome};
use tm_analyze::AnalysisReport;
use tm_calculus::{eval_constraint, parse_formula, StateSource, TransitionSource};
use tm_durable::{DurabilityConfig, WalRecord};
use tm_relational::{Database, DatabaseSchema, RelationSchema, Tuple, Value};
use tm_rules::{parse_rule, IntegrityRule, RuleAction, ValidationReport};

use crate::catalog::Catalog;
use crate::durability::DurableState;
use crate::error::{EngineError, Result};
use crate::modify::{
    mod_t_with, CheckSummary, ModContext, ModificationTrace, SelectionMode, SpecializationReport,
};
use crate::prepared::{BoundTransaction, Prepared, Session};
use crate::views::ViewDef;

/// How (and whether) integrity is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcementMode {
    /// No modification — transactions run as submitted. (Baseline; an
    /// integrity-free DBMS.)
    Off,
    /// Rules are selected, optimized and translated at enforcement time —
    /// the literal reading of Algorithm 5.1.
    Dynamic,
    /// Rules are compiled once at definition time into integrity programs
    /// (Definition 6.3) and concatenated at enforcement time
    /// (Algorithm 6.2). The paper's recommended configuration.
    #[default]
    Static,
    /// Like `Static`, with per-trigger differential-relation
    /// specializations (§5.2.1/\[7\]): checks touch only `R@ins`/`R@del`
    /// where the condition's shape allows.
    Differential,
}

impl EnforcementMode {
    fn selection(self) -> Option<SelectionMode> {
        match self {
            EnforcementMode::Off => None,
            EnforcementMode::Dynamic => Some(SelectionMode::Dynamic),
            EnforcementMode::Static => Some(SelectionMode::Static),
            EnforcementMode::Differential => Some(SelectionMode::Differential),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Enforcement mode (default: `Static`).
    pub mode: EnforcementMode,
    /// Admit rule sets whose triggering graph has cycles (Definition 6.1).
    /// The modification fixpoint is then only guarded by `max_rounds`.
    pub allow_cycles: bool,
    /// Round budget for the `ModP` recursion.
    pub max_rounds: usize,
    /// Specialize appended checks against the transaction template
    /// (weakest-precondition pruning + point-probe reduction; default
    /// `true`). Disable to append every selected rule's generic check —
    /// the PR-4 behaviour, kept as the soundness baseline.
    pub specialize: bool,
    /// Durability knobs (commit logging level, group commit, automatic
    /// checkpointing). Only consulted once durability is attached via
    /// [`Engine::make_durable`] / [`Engine::recover`]; a plain in-memory
    /// engine ignores them.
    pub durability: DurabilityConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: EnforcementMode::Static,
            allow_cycles: false,
            max_rounds: 32,
            specialize: true,
            durability: DurabilityConfig::default(),
        }
    }
}

/// Per-transaction modification statistics.
pub type ModStats = ModificationTrace;

/// The result of executing one transaction through the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// The executor's verdict (committed or aborted, with statistics).
    pub outcome: TxOutcome,
    /// The transaction as actually executed, when `ModT` produced one and
    /// this execution owns it; `None` means the submitted transaction ran
    /// verbatim (`Off` mode) **or** the execution went through a retained
    /// prepared plan (inspect the plan via
    /// [`crate::prepared::Prepared::transaction`] instead).
    pub modified: Option<Transaction>,
    /// Modification statistics **of this execution**: executions that
    /// reused a prepared plan report an empty trace — their modification
    /// happened once, at prepare time
    /// ([`crate::prepared::Prepared::modification`]).
    pub modification: ModStats,
    /// Whether this execution reused a previously prepared plan without
    /// re-running `ModT`. Always `false` for ad-hoc [`Engine::execute`];
    /// `true` for a prepared execution unless the plan had gone stale and
    /// was re-modified for this call.
    pub reused_plan: bool,
    /// Rule-check accounting of the plan this execution ran: rules
    /// skipped (untriggered or dropped with a weakest-precondition
    /// proof), reduced to point probes, and evaluated generically. For a
    /// reused prepared plan these are the prepare-time counts; for `Off`
    /// mode, all zeros.
    pub checks: CheckSummary,
    /// Wall-clock nanoseconds of each rule check this execution ran, in
    /// plan order — one entry per appended check statement reached (fast
    /// path: per check/probe op; generic path: per alarm). Empty unless
    /// per-check timing is enabled ([`Engine::set_check_timing`]) and the
    /// execution went through a prepared plan; attribute entries to rules
    /// by zipping against [`crate::Prepared::check_attribution`]. An
    /// aborting check records its time before the abort unwinds.
    pub check_times_ns: Vec<u64>,
}

impl EngineOutcome {
    /// Whether the transaction committed.
    pub fn committed(&self) -> bool {
        self.outcome.is_committed()
    }

    /// Executor statistics (statements run, alarms evaluated/fired, …).
    pub fn exec_stats(&self) -> &ExecStats {
        self.outcome.stats()
    }

    /// The modified transaction, or `None` when the submitted transaction
    /// ran unchanged.
    pub fn modified_transaction(&self) -> Option<&Transaction> {
        self.modified.as_ref()
    }
}

impl fmt::Display for EngineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            TxOutcome::Committed(_) => write!(f, "committed")?,
            TxOutcome::Aborted { reason, .. } => write!(f, "aborted: {reason}")?,
        }
        write!(
            f,
            " ({} rounds, {} rules fired, {} statements appended)",
            self.modification.rounds,
            self.modification.rules_fired.len(),
            self.modification.statements_appended
        )
    }
}

/// The transaction modification engine: database + catalog + executor.
#[derive(Debug)]
pub struct Engine {
    db: Database,
    catalog: Catalog,
    config: EngineConfig,
    executor: Executor,
    views: Vec<ViewDef>,
    /// Monotonic stamp of the rule catalog: bumped on every catalog
    /// change, recorded by [`Engine::prepare`] into each plan, checked at
    /// prepared execution for stale-plan safety.
    epoch: u64,
    /// Attached durability (WAL + checkpoint directory), when any.
    durable: Option<Box<DurableState>>,
    /// Record per-check wall-clock time into
    /// [`EngineOutcome::check_times_ns`]. Deliberately **not** part of
    /// [`EngineConfig`] — the config is encoded into checkpoints, and
    /// timing is an observability toggle of the running process, not a
    /// semantic property of the database. Off by default: the hot prepared
    /// path stays free of `Instant` calls unless asked.
    time_checks: bool,
}

impl Clone for Engine {
    /// Clones share no durability: the WAL file handle belongs to exactly
    /// one engine, so the clone is a plain in-memory copy (the usual use
    /// is a never-crashed "twin" for equivalence checks). Attach its own
    /// directory via [`Engine::make_durable`] if the clone must persist.
    fn clone(&self) -> Engine {
        Engine {
            db: self.db.clone(),
            catalog: self.catalog.clone(),
            config: self.config.clone(),
            executor: Executor,
            views: self.views.clone(),
            epoch: self.epoch,
            durable: None,
            time_checks: self.time_checks,
        }
    }
}

impl Engine {
    /// Create an engine over a schema with the default (Static) config.
    pub fn new(schema: DatabaseSchema) -> Engine {
        Engine::with_config(schema, EngineConfig::default())
    }

    /// Create an engine with an explicit configuration.
    pub fn with_config(schema: DatabaseSchema, config: EngineConfig) -> Engine {
        let shared = schema.into_shared();
        Engine {
            db: Database::new(shared.clone()),
            catalog: Catalog::new(shared, matches!(config.mode, EnforcementMode::Differential)),
            config,
            executor: Executor,
            views: Vec::new(),
            epoch: 0,
            durable: None,
            time_checks: false,
        }
    }

    /// Enable or disable per-check wall-clock timing: when on, prepared
    /// executions fill [`EngineOutcome::check_times_ns`] with one sample
    /// per rule check reached. Off by default — each sample costs two
    /// monotonic-clock reads, which a microbenchmark-grade hot path
    /// notices. The flag is process-local observability state and is not
    /// persisted in checkpoints.
    pub fn set_check_timing(&mut self, on: bool) {
        self.time_checks = on;
    }

    /// Whether per-check timing is enabled ([`Engine::set_check_timing`]).
    pub fn check_timing(&self) -> bool {
        self.time_checks
    }

    /// The current database state.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Internal mutable database access (recovery replay and durability
    /// rollback paths).
    pub(crate) fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The registered materialized views, in definition order.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    pub(crate) fn durable(&self) -> &Option<Box<DurableState>> {
        &self.durable
    }

    pub(crate) fn durable_mut(&mut self) -> &mut Option<Box<DurableState>> {
        &mut self.durable
    }

    pub(crate) fn set_durable(&mut self, durable: Option<Box<DurableState>>) {
        self.durable = durable;
    }

    /// The integrity catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the engine configuration. Changing the
    /// enforcement mode or the `specialize` switch affects only future
    /// modifications; already-prepared plans keep executing as compiled
    /// until the catalog epoch moves.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// Bulk-load tuples into a relation, bypassing integrity enforcement
    /// (initial database population; the paper's §7 experiments load the
    /// test database this way before measuring constraint checks). Loads
    /// through [`Database::extend`]: one relation lookup and at most one
    /// COW unshare for the whole batch.
    ///
    /// Under attached durability the whole batch is logged as a **single**
    /// WAL record — one frame, one fsync — after the in-memory extend
    /// succeeded; a logging failure rolls the batch back out again.
    pub fn load(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize> {
        if !self.wal_active() {
            let n = self.db.extend(relation, tuples)?;
            if n > 0 {
                // Loads advance the logical clock like any other state
                // transition — the concurrent layer uses the clock to
                // notice administrative writes that bypass its epoch log.
                self.db.tick();
            }
            return Ok(n);
        }
        // Track what was *actually* inserted, not the input batch:
        // relations are sets, so tuples already present were not inserted
        // by this load — unapplying the whole batch on failure would
        // silently delete pre-existing committed rows.
        let inserted = self.db.extend_returning(relation, tuples)?;
        let n = inserted.len();
        if n == 0 {
            return Ok(0); // nothing to make durable
        }
        if let Err(e) = self.wal_append(&WalRecord::Load {
            relation: relation.to_owned(),
            tuples: inserted.clone(),
        }) {
            let undo = tm_relational::RelationDelta {
                relation: relation.to_owned(),
                inserted,
                deleted: Vec::new(),
            };
            let _ = undo.unapply(&mut self.db);
            return Err(e);
        }
        self.db.tick();
        Ok(n)
    }

    /// Add a parsed integrity rule. The rule is compiled immediately and
    /// folded into the catalog's static analysis; unless
    /// [`EngineConfig::allow_cycles`] is set, a rule set whose *refined*
    /// triggering graph becomes cyclic is rejected and the rule removed.
    /// (Syntactic cycles that semantic refinement proves false — every
    /// cycle edge carries a proof that its source action cannot violate
    /// its target condition — are admitted: the catalog stays certified
    /// terminating.)
    pub fn add_rule(&mut self, rule: IntegrityRule) -> Result<()> {
        let record = self.wal_active().then(|| WalRecord::AddRule {
            name: rule.name.clone(),
            text: rule.canonical_text(),
        });
        let name = rule.name.clone();
        self.add_rule_unlogged(rule)?;
        if let Some(record) = record {
            if let Err(e) = self.wal_append(&record) {
                // Keep memory and disk in agreement: an unlogged rule
                // must not stay in the catalog.
                self.catalog.remove_rule(&name);
                self.epoch += 1;
                return Err(e);
            }
        }
        Ok(())
    }

    /// [`Engine::add_rule`] without WAL logging — the recovery replay path
    /// (the log already holds the record being replayed) and the internal
    /// half of logged operations.
    pub(crate) fn add_rule_unlogged(&mut self, rule: IntegrityRule) -> Result<()> {
        let name = rule.name.clone();
        self.catalog.add_rule(rule)?;
        if !self.config.allow_cycles {
            let refined = self.catalog.analysis().refined_cycles();
            if !refined.is_empty() {
                let cycles = refined.to_vec();
                self.catalog.remove_rule(&name);
                return Err(EngineError::TriggeringCycle(cycles));
            }
        }
        // The catalog changed: plans prepared before this point are stale.
        self.epoch += 1;
        Ok(())
    }

    /// Remove a rule from the catalog by name; returns whether it existed.
    /// Under attached durability the removal is logged (before the catalog
    /// is touched, so a logging failure leaves the rule in place).
    pub fn remove_rule(&mut self, name: &str) -> Result<bool> {
        if self.catalog.rule(name).is_none() {
            return Ok(false);
        }
        if self.wal_active() {
            self.wal_append(&WalRecord::RemoveRule {
                name: name.to_owned(),
            })?;
        }
        Ok(self.remove_rule_unlogged(name))
    }

    /// Catalog removal + epoch bump, no logging (recovery replay path).
    pub(crate) fn remove_rule_unlogged(&mut self, name: &str) -> bool {
        let existed = self.catalog.remove_rule(name);
        if existed {
            self.epoch += 1;
        }
        existed
    }

    /// Add a rule from RL text (`WHEN … IF NOT … THEN …`).
    pub fn add_rule_text(&mut self, text: &str, default_name: &str) -> Result<()> {
        let rule =
            parse_rule(text, default_name).map_err(|e| EngineError::RuleParse(e.to_string()))?;
        self.add_rule(rule)
    }

    /// Declare a constraint from CL text with the default enforcement
    /// (abort on violation) and a generated trigger set — the paper's
    /// "default way" of Section 4.
    pub fn define_constraint(&mut self, name: &str, cl: &str) -> Result<()> {
        let formula = parse_formula(cl).map_err(|e| EngineError::RuleParse(e.to_string()))?;
        self.add_rule(IntegrityRule::with_generated_triggers(
            name,
            formula,
            RuleAction::Abort,
        ))
    }

    /// Define a materialized view maintained by transaction modification
    /// (the paper's second application, §7). See [`crate::views`].
    ///
    /// The definition is atomic: when the initial materialization aborts,
    /// the already-registered maintenance rule is removed again, so a
    /// failed definition leaves neither a rule that poisons later
    /// transactions nor a half-registered view behind.
    ///
    /// Under attached durability a successful definition is logged as one
    /// `DefineView` record — not as an `AddRule` plus a `Commit`: replay
    /// re-runs the definition, whose initial materialization is
    /// deterministic in the database state.
    pub fn define_view(&mut self, view: ViewDef) -> Result<()> {
        let record = self.wal_active().then(|| WalRecord::DefineView {
            name: view.name.clone(),
            definition: view.definition.to_string(),
        });
        let rule_name = self.define_view_unlogged(view)?;
        if let Some(record) = record {
            if let Err(e) = self.wal_append(&record) {
                // Roll the whole definition back: drop the maintenance
                // rule, the registration, and the materialized contents.
                self.catalog.remove_rule(&rule_name);
                self.epoch += 1;
                let view = self.views.pop().expect("view was just registered");
                let contents = tm_relational::RelationDelta {
                    relation: view.name.clone(),
                    inserted: self
                        .db
                        .relation(&view.name)
                        .map(|r| r.sorted_tuples())
                        .unwrap_or_default(),
                    deleted: Vec::new(),
                };
                let _ = contents.unapply(&mut self.db);
                return Err(e);
            }
        }
        Ok(())
    }

    /// [`Engine::define_view`] without WAL logging (recovery replay and
    /// the internal half of the logged path). Returns the maintenance
    /// rule's name so the caller can roll the definition back.
    pub(crate) fn define_view_unlogged(&mut self, view: ViewDef) -> Result<String> {
        let rule = view.maintenance_rule(self.catalog.schema())?;
        let rule_name = rule.name.clone();
        // Materialize the initial contents.
        let init = view.refresh_program();
        self.add_rule_unlogged(rule)?;
        let outcome = self.executor.execute(&mut self.db, &init.bracket());
        match outcome {
            TxOutcome::Committed(_) => {
                self.views.push(view);
                Ok(rule_name)
            }
            TxOutcome::Aborted { reason, .. } => {
                self.catalog.remove_rule(&rule_name);
                self.epoch += 1; // the catalog changed again
                Err(EngineError::View(reason.to_string()))
            }
        }
    }

    /// Re-register a view whose maintenance rule and materialized contents
    /// were already restored from a checkpoint (recovery only — no rule is
    /// added, nothing is materialized, nothing is logged).
    pub(crate) fn restore_view(&mut self, view: ViewDef) {
        self.views.push(view);
    }

    /// Validate the rule set's triggering behaviour (Section 6.1) —
    /// the *syntactic* report. See [`Engine::validate_full`] for the
    /// semantic analysis.
    pub fn validate(&self) -> ValidationReport {
        self.catalog.validate()
    }

    /// The full static analysis of the current rule set: coded
    /// diagnostics (unsatisfiable / dead / subsumed constraints), the
    /// pruned-edge proofs of semantic triggering-graph refinement, and
    /// the termination certificate. Assembled from the incrementally
    /// maintained catalog analysis — no re-analysis happens here.
    pub fn validate_full(&self) -> AnalysisReport {
        self.catalog.analysis_report()
    }

    /// The modification context for the current catalog state: the
    /// configured mode plus the catalog's trigger index (O(affected) rule
    /// selection) and — when [`EngineConfig::specialize`] is on — its
    /// condition shapes for weakest-precondition specialization.
    fn mod_context(&self) -> Option<ModContext<'_>> {
        self.config.mode.selection().map(|mode| ModContext {
            mode,
            rules: self.catalog.rules(),
            programs: self.catalog.programs(),
            schema: self.catalog.schema(),
            max_rounds: self.config.max_rounds,
            index: Some(self.catalog.trigger_index()),
            shapes: self.config.specialize.then(|| self.catalog.shapes()),
            // Refinement is driven by definition-time proofs, not by the
            // per-template `specialize` switch: pruned edges and the
            // termination certificate hold for every transaction.
            analysis: Some(self.catalog.analysis()),
        })
    }

    /// Internal: `ModT` plus the specialization report.
    fn modify_full<'t>(
        &self,
        tx: &'t Transaction,
    ) -> Result<(Cow<'t, Transaction>, ModStats, SpecializationReport)> {
        match self.mod_context() {
            None => Ok((
                Cow::Borrowed(tx),
                ModStats::default(),
                SpecializationReport::default(),
            )),
            Some(ctx) => mod_t_with(tx, &ctx)
                .map(|(modified, stats, report)| (Cow::Owned(modified), stats, report)),
        }
    }

    /// Run `ModT` on a transaction without executing it — useful for
    /// inspecting modifications (Example 5.1) and for benchmarks that
    /// isolate modification cost.
    ///
    /// Returns `Cow::Borrowed` when enforcement is `Off`: the no-op path
    /// hands the submitted transaction straight back without copying it.
    pub fn modify_only<'t>(&self, tx: &'t Transaction) -> Result<(Cow<'t, Transaction>, ModStats)> {
        self.modify_full(tx)
            .map(|(modified, stats, _)| (modified, stats))
    }

    /// Execute a transaction: modify per the configured mode, then run it
    /// with full atomicity.
    ///
    /// This is the ad-hoc path — semantically [`Engine::prepare`] plus an
    /// empty bind plus [`Engine::execute_bound`], with the throwaway plan
    /// elided: the empty-bind arity check runs up front, `ModT` runs on
    /// this call (the `Off`-mode no-op path still executes the borrowed
    /// transaction without copying it), and nothing is retained. The
    /// transaction must be ground (no `?i` placeholders); submit templates
    /// through [`Engine::prepare`] / [`Session::prepare`] instead, where
    /// `ModT` runs once and bind-execute repeats cheaply.
    pub fn execute(&mut self, tx: &Transaction) -> Result<EngineOutcome> {
        let params = tx.param_count();
        if params > 0 {
            // The empty bind of the prepare/bind/execute contract: ad-hoc
            // execution is ground.
            return Err(EngineError::ParamArity {
                expected: params,
                got: 0,
            });
        }
        let (modified, modification, report) = self.modify_full(tx)?;
        let outcome = if self.wal_active() {
            let (outcome, deltas) =
                self.executor
                    .execute_bound_capture(&mut self.db, &modified, &[]);
            self.log_commit(deltas)?;
            outcome
        } else {
            self.executor.execute(&mut self.db, &modified)
        };
        Ok(EngineOutcome {
            outcome,
            modified: match modified {
                Cow::Borrowed(_) => None, // ran verbatim, keep no copy
                Cow::Owned(t) => Some(t),
            },
            modification,
            reused_plan: false,
            checks: report.summary(),
            // Ad-hoc executions are untimed: attribution needs a prepared
            // plan's decision list; the observability path is prepared.
            check_times_ns: Vec::new(),
        })
    }

    /// The current catalog epoch — the stamp [`Engine::prepare`] records
    /// into each plan. Any rule-catalog change bumps it, invalidating
    /// previously prepared plans (they are transparently re-modified when
    /// next executed).
    pub fn plan_epoch(&self) -> u64 {
        self.epoch
    }

    /// Prepare a transaction template: run `ModT` **once** over it (per
    /// the configured enforcement mode) and compile the modified result
    /// into an execution plan. The template's constants may be parameter
    /// placeholders `?0`, `?1`, … — bind values with
    /// [`Prepared::bind`] and execute with [`Engine::execute_bound`]
    /// (or hold the statement in a [`Session`]); each execution then skips
    /// rule selection, program concatenation, AST construction, and
    /// per-statement analysis entirely.
    pub fn prepare(&self, tx: &Transaction) -> Result<Prepared> {
        let (modified, modification, report) = self.modify_full(tx)?;
        // Verbatim means the plan executes exactly the submitted
        // statements: the `Off`-mode borrow, but also a template whose
        // every selected check was dropped by a specialization proof —
        // `ModT` then returns the submitted program unchanged.
        let verbatim = match &modified {
            Cow::Borrowed(_) => true,
            Cow::Owned(t) => t.debracket() == tx.debracket(),
        };
        Ok(Prepared::build(
            tx.clone(),
            modified.into_owned(),
            self.catalog.schema(),
            modification,
            report,
            self.epoch,
            verbatim,
        ))
    }

    /// Execute a bound prepared transaction. When the plan is current,
    /// this is the whole per-execution cost of integrity enforcement:
    /// run the compiled plan against the binding (`reused_plan: true`,
    /// empty per-execution modification trace). When the catalog changed
    /// since `prepare`, the plan is re-modified from its source for this
    /// call — stale plans are never executed — and the outcome reports
    /// `reused_plan: false`; re-prepare (or use [`Session`], which
    /// refreshes its stored statements in place) to stop paying that per
    /// call.
    pub fn execute_bound(&mut self, bound: &BoundTransaction<'_>) -> Result<EngineOutcome> {
        self.execute_checked(bound.prepared(), bound.values())
    }

    /// The execution core behind [`Engine::execute_bound`] and
    /// [`crate::Session::execute_prepared`]: run a plan against a value
    /// slice already validated against `prepared` (a stale plan
    /// revalidates against its replacement). Takes the slice directly so
    /// hot callers pay no per-execution allocation.
    pub(crate) fn execute_checked(
        &mut self,
        prepared: &Prepared,
        values: &[Value],
    ) -> Result<EngineOutcome> {
        if prepared.is_stale(self) {
            let fresh = self.prepare(prepared.source())?;
            fresh.check_binding(values)?;
            let (outcome, check_times_ns) =
                self.run_plan(fresh.plan(), values, fresh.checks_from())?;
            let modification = fresh.modification().clone();
            let checks = fresh.check_summary();
            return Ok(EngineOutcome {
                outcome,
                // The caller's Prepared does NOT hold what ran — hand the
                // freshly re-modified template over so "the transaction as
                // actually executed" stays inspectable. (`Off` mode keeps
                // the usual ran-verbatim `None`.)
                modified: if fresh.verbatim() {
                    None
                } else {
                    Some(fresh.into_transaction())
                },
                modification,
                reused_plan: false,
                checks,
                check_times_ns,
            });
        }
        let (outcome, check_times_ns) =
            self.run_plan(prepared.plan(), values, prepared.checks_from())?;
        Ok(EngineOutcome {
            outcome,
            modified: None,
            modification: ModStats::default(),
            reused_plan: true,
            checks: prepared.check_summary(),
            check_times_ns,
        })
    }

    /// Run a compiled plan, logging the committed differentials when
    /// durability is attached. `first` is the index of the first appended
    /// check statement ([`Prepared::checks_from`]); when per-check timing
    /// is on, the returned vector holds one nanosecond sample per check
    /// reached from there on (empty otherwise — and on the untimed path
    /// the executor runs with zero instrumentation overhead).
    fn run_plan(
        &mut self,
        plan: &tm_algebra::ExecPlan,
        values: &[Value],
        first: usize,
    ) -> Result<(TxOutcome, Vec<u64>)> {
        let mut timings = if self.time_checks {
            Some(CheckTimings {
                first,
                ns: Vec::new(),
            })
        } else {
            None
        };
        let outcome = if self.wal_active() {
            let mut deltas = Vec::new();
            let outcome = self.executor.execute_plan_instrumented(
                &mut self.db,
                plan,
                values,
                Some(&mut deltas),
                timings.as_mut(),
            );
            self.log_commit(deltas)?;
            outcome
        } else if timings.is_some() {
            self.executor.execute_plan_instrumented(
                &mut self.db,
                plan,
                values,
                None,
                timings.as_mut(),
            )
        } else {
            self.executor.execute_plan(&mut self.db, plan, values)
        };
        Ok((outcome, timings.map(|t| t.ns).unwrap_or_default()))
    }

    /// Open a [`Session`] over this engine: a client handle that owns
    /// prepared statements, refreshes stale plans in place, and serves
    /// consistent O(#relations) read snapshots.
    pub fn session(&mut self) -> Session<'_> {
        Session::new(self)
    }

    /// Ground-truth check: evaluate every *aborting* rule's condition
    /// directly on the current state (Definition 3.2 / 3.4 via the
    /// `tm-calculus` evaluator). Returns the names of violated
    /// constraints. Compensating rules are skipped — their conditions are
    /// maintained by construction, not checked.
    pub fn check_state(&self) -> Result<Vec<String>> {
        let mut violated = Vec::new();
        for (rule, info) in self.catalog.rules_with_infos() {
            if !rule.action().is_abort() {
                continue;
            }
            // The analysed condition was cached by `Catalog::add_rule`; no
            // per-check re-analysis. A failure here is an *evaluation*
            // error (the rule parsed long ago), reported as such.
            let ok = eval_constraint(info, &StateSource(&self.db))
                .map_err(|e| EngineError::Eval(e.to_string()))?;
            if !ok {
                violated.push(rule.name.clone());
            }
        }
        Ok(violated)
    }

    /// Ground-truth check of a transition (for transition constraints).
    pub fn check_transition(&self, tr: &tm_relational::Transition) -> Result<Vec<String>> {
        let mut violated = Vec::new();
        for (rule, info) in self.catalog.rules_with_infos() {
            if !rule.action().is_abort() {
                continue;
            }
            let ok = eval_constraint(info, &TransitionSource(tr))
                .map_err(|e| EngineError::Eval(e.to_string()))?;
            if !ok {
                violated.push(rule.name.clone());
            }
        }
        Ok(violated)
    }

    /// Direct access to a relation state.
    pub fn relation(&self, name: &str) -> Result<&tm_relational::Relation> {
        Ok(self.db.relation(name)?)
    }
}

/// Convenience: build the beer schema engine of the paper's examples.
pub fn beer_engine(mode: EnforcementMode) -> Engine {
    Engine::with_config(
        tm_relational::schema::beer_schema(),
        EngineConfig {
            mode,
            ..EngineConfig::default()
        },
    )
}

/// Re-exported for examples that build ad-hoc schemas.
pub fn schema_of(relations: Vec<RelationSchema>) -> Result<DatabaseSchema> {
    Ok(DatabaseSchema::from_relations(relations)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_algebra::builder::TransactionBuilder;

    fn engine(mode: EnforcementMode) -> Engine {
        let mut e = beer_engine(mode);
        e.define_constraint("r1", "forall x (x in beer implies x.alcohol >= 0)")
            .unwrap();
        e.add_rule_text(
            "IF NOT forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name)) THEN abort",
            "r2",
        )
        .unwrap();
        e.load("brewery", vec![Tuple::of(("guineken", "dublin", "ie"))])
            .unwrap();
        e
    }

    fn good_tx() -> Transaction {
        TransactionBuilder::new()
            .insert_tuple(
                "beer",
                Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
            )
            .build()
    }

    fn bad_domain_tx() -> Transaction {
        TransactionBuilder::new()
            .insert_tuple("beer", Tuple::of(("bad", "stout", "guineken", -1.0_f64)))
            .build()
    }

    fn bad_ref_tx() -> Transaction {
        TransactionBuilder::new()
            .insert_tuple("beer", Tuple::of(("orphan", "stout", "nowhere", 5.0_f64)))
            .build()
    }

    #[test]
    fn all_modes_accept_good_and_reject_bad() {
        for mode in [
            EnforcementMode::Dynamic,
            EnforcementMode::Static,
            EnforcementMode::Differential,
        ] {
            let mut e = engine(mode);
            assert!(e.execute(&good_tx()).unwrap().committed(), "{mode:?}");
            assert!(
                !e.execute(&bad_domain_tx()).unwrap().committed(),
                "{mode:?}"
            );
            assert!(!e.execute(&bad_ref_tx()).unwrap().committed(), "{mode:?}");
            // State reflects only the good transaction.
            assert_eq!(e.relation("beer").unwrap().len(), 1, "{mode:?}");
            assert!(e.check_state().unwrap().is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn off_mode_lets_violations_through() {
        let mut e = engine(EnforcementMode::Off);
        assert!(e.execute(&bad_domain_tx()).unwrap().committed());
        assert_eq!(e.check_state().unwrap(), vec!["r1".to_owned()]);
    }

    #[test]
    fn cyclic_rule_set_rejected() {
        let mut e = beer_engine(EnforcementMode::Static);
        let err = e
            .add_rule_text(
                "WHEN INS(beer) IF NOT 1 = 1 THEN insert(beer, beer@ins)",
                "self_loop",
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::TriggeringCycle(_)));
        assert!(e.catalog().is_empty(), "rejected rule must be rolled back");
    }

    #[test]
    fn cycles_admitted_when_configured() {
        let mut e = Engine::with_config(
            tm_relational::schema::beer_schema(),
            EngineConfig {
                allow_cycles: true,
                max_rounds: 4,
                ..EngineConfig::default()
            },
        );
        e.add_rule_text(
            "WHEN INS(beer) IF NOT 1 = 1 THEN insert(beer, beer@ins)",
            "self_loop",
        )
        .unwrap();
        let err = e.execute(&good_tx()).unwrap_err();
        assert!(matches!(err, EngineError::ModificationDiverged { .. }));
    }

    #[test]
    fn compensating_rule_repairs_state() {
        // Paper's R2: missing breweries are inserted instead of aborting.
        let mut e = beer_engine(EnforcementMode::Static);
        e.add_rule_text(
            "IF NOT forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name)) \
             THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                  insert(brewery, project[#0, null, null](temp))",
            "r2_compensate",
        )
        .unwrap();
        let out = e.execute(&bad_ref_tx()).unwrap();
        assert!(out.committed());
        // The compensation inserted ("nowhere", null, null).
        let breweries = e.relation("brewery").unwrap();
        assert_eq!(breweries.len(), 1);
        assert!(breweries.contains(&Tuple::of((
            tm_relational::Value::str("nowhere"),
            tm_relational::Value::Null,
            tm_relational::Value::Null
        ))));
        assert!(e.check_state().unwrap().is_empty());
    }

    #[test]
    fn transition_constraint_enforced() {
        let mut e = beer_engine(EnforcementMode::Static);
        e.define_constraint(
            "grow_only",
            "forall x (x in beer@pre implies exists y (y in beer and x == y))",
        )
        .unwrap();
        e.load(
            "beer",
            vec![Tuple::of(("pils", "lager", "guineken", 5.0_f64))],
        )
        .unwrap();
        // Deleting a beer violates the transition constraint.
        let tx = TransactionBuilder::new()
            .delete_tuple("beer", Tuple::of(("pils", "lager", "guineken", 5.0_f64)))
            .build();
        let out = e.execute(&tx).unwrap();
        assert!(!out.committed());
        assert_eq!(e.relation("beer").unwrap().len(), 1);
        // Inserting more beers is fine.
        let tx = TransactionBuilder::new()
            .insert_tuple("beer", Tuple::of(("ale", "ale", "guineken", 4.0_f64)))
            .build();
        assert!(e.execute(&tx).unwrap().committed());
    }

    #[test]
    fn modification_trace_exposed() {
        let e = engine(EnforcementMode::Static);
        let tx = good_tx();
        let (modified, stats) = e.modify_only(&tx).unwrap();
        assert_eq!(stats.rounds, 1);
        // Specialization (on by default) proves r1 unviolable for this
        // constant insert (6.0 ≥ 0) and drops its check; r2's referential
        // check reduces to a point probe.
        assert_eq!(stats.rules_fired, vec!["r2".to_owned()]);
        assert!(modified.len() > tx.len());
        assert!(matches!(modified, Cow::Owned(_)));
    }

    #[test]
    fn specialization_off_appends_every_selected_check() {
        let mut e = engine(EnforcementMode::Static);
        e.config.specialize = false;
        let tx = good_tx();
        let (modified, stats) = e.modify_only(&tx).unwrap();
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.rules_fired.len(), 2);
        assert!(modified.len() > tx.len());
        // And the outcomes agree with the specialized engine on both the
        // good and the violating transactions.
        let mut spec = engine(EnforcementMode::Static);
        for tx in [good_tx(), bad_domain_tx(), bad_ref_tx()] {
            let a = e.execute(&tx).unwrap();
            let b = spec.execute(&tx).unwrap();
            assert_eq!(a.committed(), b.committed(), "{tx}");
        }
        assert_eq!(
            e.relation("beer").unwrap().len(),
            spec.relation("beer").unwrap().len()
        );
    }

    #[test]
    fn check_summary_reports_skips_probes_and_generics() {
        let mut e = engine(EnforcementMode::Static);
        // A third rule the transaction never triggers.
        e.define_constraint("r3", "forall x (x in brewery implies x.name <> null)")
            .unwrap();
        let out = e.execute(&good_tx()).unwrap();
        assert!(out.committed());
        // r3 untriggered + r1 dropped = 2 skipped; r2 probed; none generic.
        assert_eq!(out.checks.skipped, 2);
        assert_eq!(out.checks.probed, 1);
        assert_eq!(out.checks.evaluated, 0);
        // Off mode reports zeros.
        let mut off = beer_engine(EnforcementMode::Off);
        let out = off.execute(&good_tx()).unwrap();
        assert_eq!(out.checks, crate::modify::CheckSummary::default());
    }

    #[test]
    fn off_mode_modify_only_borrows() {
        let e = beer_engine(EnforcementMode::Off);
        let tx = good_tx();
        let (modified, stats) = e.modify_only(&tx).unwrap();
        assert!(
            matches!(modified, Cow::Borrowed(_)),
            "Off mode must not copy the transaction"
        );
        assert_eq!(stats.statements_appended, 0);
        // And execution keeps no copy either.
        let mut e = beer_engine(EnforcementMode::Off);
        let out = e.execute(&tx).unwrap();
        assert!(out.committed());
        assert!(out.modified.is_none());
        assert!(out.modified_transaction().is_none());
    }

    #[test]
    fn evaluation_failures_are_not_parse_errors() {
        // The rule parses and analyses fine; evaluating its condition on a
        // non-empty state divides by zero — a ground-truth *evaluation*
        // failure, which must surface as `Eval`, not `RuleParse`.
        let mut e = beer_engine(EnforcementMode::Off);
        e.define_constraint("div", "forall x (x in beer implies 1 / 0 = 1)")
            .unwrap();
        e.load(
            "beer",
            vec![Tuple::of(("pils", "lager", "guineken", 5.0_f64))],
        )
        .unwrap();
        let err = e.check_state().unwrap_err();
        assert!(matches!(err, EngineError::Eval(_)), "got {err:?}");
    }

    #[test]
    fn duplicate_rule_name_rejected() {
        let mut e = engine(EnforcementMode::Static);
        let err = e
            .define_constraint("r1", "forall x (x in beer implies x.alcohol >= 0)")
            .unwrap_err();
        assert!(matches!(err, EngineError::DuplicateRule(_)));
    }
}
