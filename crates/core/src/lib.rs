#![warn(missing_docs)]

//! # `txmod` — a transaction modification subsystem for integrity control
//!
//! This crate is the primary contribution of Grefen, *Combining Theory and
//! Practice in Integrity Control: A Declarative Approach to the
//! Specification of a Transaction Modification Subsystem* (VLDB 1993),
//! reproduced as a Rust library.
//!
//! **Transaction modification** prevents integrity violations by rewriting
//! every update transaction before execution: the subsystem appends the
//! extended relational algebra programs of all integrity rules the
//! transaction's updates may trigger — recursively, because appended
//! compensating actions may trigger further rules — so that the modified
//! transaction *cannot* commit in a state that violates the declared
//! constraints.
//!
//! ```
//! use txmod::Engine;
//! use tm_relational::schema::beer_schema;
//! use tm_relational::Tuple;
//! use tm_algebra::builder::TransactionBuilder;
//!
//! let mut engine = Engine::new(beer_schema());
//! engine
//!     .define_constraint("domain", "forall x (x in beer implies x.alcohol >= 0)")
//!     .unwrap();
//! engine
//!     .load("brewery", vec![Tuple::of(("guineken", "dublin", "ie"))])
//!     .unwrap();
//!
//! // A violating transaction is modified and aborts:
//! let tx = TransactionBuilder::new()
//!     .insert_tuple("beer", Tuple::of(("bad", "stout", "guineken", -1.0_f64)))
//!     .build();
//! let outcome = engine.execute(&tx).unwrap();
//! assert!(!outcome.committed());
//!
//! // A correct one commits:
//! let tx = TransactionBuilder::new()
//!     .insert_tuple("beer", Tuple::of(("good", "stout", "guineken", 6.0_f64)))
//!     .build();
//! assert!(engine.execute(&tx).unwrap().committed());
//! ```
//!
//! ## Module map
//!
//! * [`modify`] — the declarative algorithms: `ModT`/`ModP`/`TrigP`
//!   (Algorithm 5.1), rule selection `SelRS` (5.2), on-the-fly rule
//!   translation `TrOptRS` (5.3), and the statically compiled variant
//!   `SelPS`/`ConcatP` (Algorithm 6.2),
//! * [`programs`] — integrity programs (Definition 6.3) and `GetIntP`
//!   (Algorithm 6.1), plus the differential per-trigger variant,
//! * [`catalog`] — the rule catalog with triggering-graph validation and
//!   an incrementally maintained static analysis (`tm-analyze`):
//!   diagnostics, semantic triggering-graph refinement, termination
//!   certificates,
//! * [`engine`] — the integrated engine: schema + data + rules +
//!   configurable enforcement,
//! * [`prepared`] — prepared transactions and the session API: run `ModT`
//!   once over a parameterized template ([`Engine::prepare`]), bind values
//!   and execute millions of times
//!   ([`prepared::Prepared::bind`] / [`prepared::Session::execute_prepared`]),
//!   with consistent copy-on-write read snapshots
//!   ([`prepared::Session::snapshot`]),
//! * [`views`] — materialized view maintenance by transaction
//!   modification, the second application named in the paper's
//!   conclusions,
//! * [`durability`] — the engine-side durability policy: commit
//!   differentials and catalog DDL logged through the `tm-durable` WAL,
//!   checkpointing ([`Engine::checkpoint`]) and crash recovery
//!   ([`Engine::recover`]) that rebuild a `state_eq`-identical engine
//!   from the committed prefix,
//! * [`concurrent`] — multi-version concurrency over the copy-on-write
//!   snapshots: [`ConcurrentEngine`] runs many sessions' prepared
//!   executions in parallel, serializes commits through a flat-combining
//!   applier, and validates first-committer-wins directly on the
//!   `R@ins`/`R@del` differentials (conflicts are typed, retryable
//!   aborts).

pub mod catalog;
pub mod concurrent;
pub mod durability;
pub mod engine;
pub mod error;
pub mod modify;
pub mod prepared;
pub mod programs;
pub mod views;

pub use catalog::Catalog;
pub use concurrent::{ConcurrentEngine, ConcurrentSession, EngineGuard, PendingCommit};
pub use durability::{Recovered, RecoveryError, RecoveryReport, WAL_FILE};
pub use engine::{EnforcementMode, Engine, EngineConfig, EngineOutcome, ModStats};
pub use error::{EngineError, Result};
pub use modify::{
    mod_t, mod_t_with, CheckSummary, ModContext, RuleSpecialization, SpecOutcome,
    SpecializationReport,
};
pub use prepared::{BoundTransaction, Prepared, Session, StatementId};
pub use programs::{get_int_p, IntegrityProgram};
pub use tm_analyze::{
    AnalysisReport, CatalogAnalysis, Code as AnalysisCode, Diagnostic, PrunedEdge, Severity,
    TerminationCertificate,
};
pub use tm_durable::{Durability, DurabilityConfig, DurableError, FailPlan, Failpoints};
pub use views::ViewDef;
