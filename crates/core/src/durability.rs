//! Engine-side durability: WAL hookup, checkpointing, and crash recovery.
//!
//! The machinery (frames, checksums, snapshots, fault injection) lives in
//! `tm-durable`; this module owns the *policy* — what gets logged when, how
//! a checkpoint captures engine state, and how [`Engine::recover`] rebuilds
//! an engine that is `state_eq`-identical to the committed prefix of a
//! crashed one.
//!
//! ## What gets logged
//!
//! * every committed transaction's net per-relation differentials (one
//!   `Commit` frame; empty-effect commits log nothing),
//! * catalog DDL as first-class records: `AddRule`, `RemoveRule`,
//!   `DefineView` (replay re-runs the deterministic initial
//!   materialization, so no separate commit frame is logged for it), and
//!   `Load` (the whole bulk batch as one frame — one write, one fsync),
//!
//! all appended *after* the in-memory effect succeeded and undone again if
//! the append fails: a transaction either is in memory **and** on disk, or
//! in neither.
//!
//! ## Recovery contract
//!
//! [`Engine::recover`] loads the newest valid checkpoint (falling back to
//! older ones if the newest is damaged), replays the WAL's valid frame
//! prefix beyond the checkpoint LSN, truncates any torn tail at the frame
//! boundary, and reports the LSN range it recovered through.

use std::path::{Path, PathBuf};

use tm_durable::checkpoint::{fsync_dir, list_checkpoints, prune_checkpoints};
use tm_durable::wal::scan_wal;
use tm_durable::{
    Checkpoint, Durability, DurabilityConfig, DurableError, Failpoints, Wal, WalRecord,
};
use tm_relational::codec::ByteReader;
use tm_relational::RelationDelta;
use tm_rules::parse_rule;

use crate::engine::{EnforcementMode, Engine, EngineConfig};
use crate::error::EngineError;
use crate::views::ViewDef;

/// The WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Durability state attached to a live engine.
#[derive(Debug)]
pub(crate) struct DurableState {
    /// The durability directory (WAL + checkpoints).
    pub dir: PathBuf,
    /// The open log.
    pub wal: Wal,
    /// Shared failpoints (healthy outside the crash tests).
    pub points: Failpoints,
    /// LSN covered by the latest checkpoint.
    pub checkpoint_lsn: u64,
    /// Frames appended since that checkpoint (drives
    /// [`DurabilityConfig::checkpoint_every`]).
    pub frames_since_checkpoint: u64,
    /// A deferred automatic-checkpoint failure (see
    /// [`Engine::take_checkpoint_error`]): the commit that triggered the
    /// checkpoint was already durable, so its success could not be
    /// retracted — the error is held here instead.
    pub checkpoint_error: Option<EngineError>,
}

/// Why recovery failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The directory holds no loadable checkpoint at all. Carries the
    /// per-file failures when damaged candidates were found and rejected.
    NoCheckpoint {
        /// The directory searched.
        dir: String,
        /// Load failures of rejected candidates, newest first.
        rejected: Vec<DurableError>,
    },
    /// A durability-layer failure (I/O, log scan).
    Durable(DurableError),
    /// The checkpoint loaded but its contents would not rebuild an engine
    /// (unparsable rule or view text, schema mismatch).
    Rebuild {
        /// What failed to rebuild.
        detail: String,
    },
    /// A valid WAL frame would not replay — the log disagrees with the
    /// state it was logged against.
    Replay {
        /// The frame's LSN.
        lsn: u64,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoCheckpoint { dir, rejected } => {
                write!(f, "no loadable checkpoint in `{dir}`")?;
                for e in rejected {
                    write!(f, "; rejected: {e}")?;
                }
                Ok(())
            }
            RecoveryError::Durable(e) => write!(f, "{e}"),
            RecoveryError::Rebuild { detail } => {
                write!(f, "checkpoint state failed to rebuild: {detail}")
            }
            RecoveryError::Replay { lsn, detail } => {
                write!(f, "WAL frame lsn {lsn} failed to replay: {detail}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<DurableError> for RecoveryError {
    fn from(e: DurableError) -> Self {
        RecoveryError::Durable(e)
    }
}

/// What [`Engine::recover`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN covered by the checkpoint recovery started from.
    pub checkpoint_lsn: u64,
    /// The last LSN whose effects are in the recovered state (equals
    /// `checkpoint_lsn` when the log held nothing newer).
    pub recovered_lsn: u64,
    /// WAL frames replayed on top of the checkpoint.
    pub frames_replayed: u64,
    /// When the log ended in a torn/corrupt tail: the byte offset it was
    /// truncated at and the validator's reason. `None` for a clean log.
    pub truncated_tail: Option<(u64, String)>,
}

/// A recovered engine plus the report of how it was rebuilt.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt engine, open for further durable execution.
    pub engine: Engine,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

// ---------------------------------------------------------------------------
// Engine-config blob (stored opaquely inside checkpoints)
// ---------------------------------------------------------------------------

fn mode_tag(m: EnforcementMode) -> u8 {
    match m {
        EnforcementMode::Off => 0,
        EnforcementMode::Dynamic => 1,
        EnforcementMode::Static => 2,
        EnforcementMode::Differential => 3,
    }
}

fn level_tag(l: Durability) -> u8 {
    match l {
        Durability::None => 0,
        Durability::Buffered => 1,
        Durability::Fsync => 2,
    }
}

pub(crate) fn encode_config(c: &EngineConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    out.push(mode_tag(c.mode));
    out.push(c.allow_cycles as u8);
    out.extend_from_slice(&(c.max_rounds as u64).to_le_bytes());
    out.push(c.specialize as u8);
    out.push(level_tag(c.durability.level));
    out.extend_from_slice(&(c.durability.group_commit as u64).to_le_bytes());
    out.extend_from_slice(&c.durability.checkpoint_every.to_le_bytes());
    out
}

pub(crate) fn decode_config(buf: &[u8]) -> Result<EngineConfig, String> {
    let mut r = ByteReader::new(buf);
    let mut next = |what: &str| r.u8().map_err(|e| format!("{what}: {e}"));
    let mode = match next("mode")? {
        0 => EnforcementMode::Off,
        1 => EnforcementMode::Dynamic,
        2 => EnforcementMode::Static,
        3 => EnforcementMode::Differential,
        t => return Err(format!("unknown enforcement mode tag {t}")),
    };
    let allow_cycles = next("allow_cycles")? != 0;
    let max_rounds = r.u64().map_err(|e| format!("max_rounds: {e}"))? as usize;
    let mut next = |what: &str| r.u8().map_err(|e| format!("{what}: {e}"));
    let specialize = next("specialize")? != 0;
    let level = match next("durability level")? {
        0 => Durability::None,
        1 => Durability::Buffered,
        2 => Durability::Fsync,
        t => return Err(format!("unknown durability level tag {t}")),
    };
    let group_commit = r.u64().map_err(|e| format!("group_commit: {e}"))? as usize;
    let checkpoint_every = r.u64().map_err(|e| format!("checkpoint_every: {e}"))?;
    r.expect_end().map_err(|e| e.to_string())?;
    Ok(EngineConfig {
        mode,
        allow_cycles,
        max_rounds,
        specialize,
        durability: DurabilityConfig {
            level,
            group_commit,
            checkpoint_every,
        },
    })
}

// ---------------------------------------------------------------------------
// Engine durability API
// ---------------------------------------------------------------------------

impl Engine {
    /// Attach durability: `dir` becomes this engine's durability
    /// directory, an initial checkpoint snapshots the current state, and
    /// from here on every commit and catalog change is logged per
    /// [`EngineConfig::durability`] (under [`Durability::None`], only
    /// checkpoints persist). The directory is created if missing; any
    /// previous contents are replaced — use [`Engine::recover`] to *resume*
    /// from an existing directory instead.
    pub fn make_durable(&mut self, dir: &Path) -> crate::error::Result<()> {
        self.make_durable_with_failpoints(dir, Failpoints::none())
    }

    /// [`Engine::make_durable`] with fault injection armed — the crash
    /// tests' entry point.
    pub fn make_durable_with_failpoints(
        &mut self,
        dir: &Path,
        points: Failpoints,
    ) -> crate::error::Result<()> {
        std::fs::create_dir_all(dir)
            .map_err(|e| EngineError::Durability(DurableError::io("mkdir", dir, e)))?;
        // Replace any previous incarnation wholesale — and remove its WAL
        // *before* the fresh checkpoint-0 exists. The other order has a
        // crash window that leaves checkpoint-0 next to the stale log,
        // whose frames (all lsn > 0) recovery would silently replay on
        // top of the new snapshot; this order's windows leave either the
        // old state or an explicit `NoCheckpoint`.
        if let Ok(old) = list_checkpoints(dir) {
            for (_, path) in old {
                let _ = std::fs::remove_file(path);
            }
        }
        let wal_path = dir.join(WAL_FILE);
        match std::fs::remove_file(&wal_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(EngineError::Durability(DurableError::io(
                    "unlink", &wal_path, e,
                )))
            }
        }
        fsync_dir(dir).map_err(EngineError::Durability)?;
        let ckpt = self.snapshot(0);
        ckpt.write_atomic(dir).map_err(EngineError::Durability)?;
        let wal = Wal::create(&wal_path, 1, points.clone()).map_err(EngineError::Durability)?;
        self.set_durable(Some(Box::new(DurableState {
            dir: dir.to_owned(),
            wal,
            points,
            checkpoint_lsn: 0,
            frames_since_checkpoint: 0,
            checkpoint_error: None,
        })));
        Ok(())
    }

    /// Whether this engine is logging (durability attached and the level
    /// is not [`Durability::None`]).
    pub(crate) fn wal_active(&self) -> bool {
        self.durable().is_some() && self.config().durability.level != Durability::None
    }

    /// The last LSN appended to the WAL, when durability is attached.
    pub fn durable_lsn(&self) -> Option<u64> {
        self.durable().as_ref().and_then(|d| d.wal.last_lsn())
    }

    /// The LSN the next WAL append will receive, when durability is
    /// attached. After [`crate::Engine::recover`] this is strictly past
    /// every replayed record, so the concurrent engine seeds its commit
    /// epoch from it — post-recovery sessions can never observe an epoch
    /// that an earlier incarnation already used.
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.durable().as_ref().map(|d| d.wal.next_lsn())
    }

    /// The failpoints handle of the attached durability, when any — the
    /// crash tests arm faults through this while the engine runs.
    pub fn durable_failpoints(&self) -> Option<Failpoints> {
        self.durable().as_ref().map(|d| d.points.clone())
    }

    /// Append one record and flush per the configured durability level.
    /// Returns the assigned LSN.
    pub(crate) fn wal_append(&mut self, record: &WalRecord) -> crate::error::Result<u64> {
        let (level, group) = {
            let c = &self.config().durability;
            (c.level, c.group_commit)
        };
        let state = self
            .durable_mut()
            .as_mut()
            .expect("wal_append requires attached durability");
        // Remember where the log stood: a frame whose durability cannot be
        // established (failed write or fsync) must not stay in the file, or
        // recovery would replay an operation the engine reported as failed.
        let (prev_len, prev_lsn) = (state.wal.len(), state.wal.next_lsn());
        // Buffered commits stay in userspace (no syscall on the hot path);
        // Fsync writes through per commit and fsyncs per group.
        let appended = if level == Durability::Buffered {
            state.wal.append_buffered(record)
        } else {
            state.wal.append(record)
        }
        .and_then(|lsn| {
            if level == Durability::Fsync {
                state.wal.sync_every(group)?;
            }
            Ok(lsn)
        });
        let lsn = match appended {
            Ok(lsn) => lsn,
            Err(e) => {
                let _ = state.wal.rollback_to(prev_len, prev_lsn);
                return Err(EngineError::Durability(e));
            }
        };
        state.frames_since_checkpoint += 1;
        let due = {
            let every = self.config().durability.checkpoint_every;
            every > 0
                && self
                    .durable()
                    .as_ref()
                    .is_some_and(|d| d.frames_since_checkpoint >= every)
        };
        if due {
            // The frame is already durably appended: the commit riding on
            // it has succeeded and its success must not be retracted by a
            // failing *checkpoint* — recovery would replay the frame, and
            // reporting failure here would resurrect a "failed" commit on
            // a client retry. Defer the error instead; the frame counter
            // stays up, so the next append retries the checkpoint, and
            // [`Engine::take_checkpoint_error`] surfaces what happened.
            if let Err(e) = self.checkpoint() {
                self.durable_mut()
                    .as_mut()
                    .expect("durability checked above")
                    .checkpoint_error = Some(e);
            }
        }
        Ok(lsn)
    }

    /// Take (and clear) the most recent *automatic* checkpoint failure.
    ///
    /// An auto-checkpoint rides on a commit whose WAL frame is already
    /// durable, so its failure cannot fail the commit — the commit is
    /// reported successful and the checkpoint error is parked here. The
    /// log simply keeps growing until a later automatic (retried on every
    /// subsequent append) or explicit [`Engine::checkpoint`] succeeds;
    /// durability is not weakened, only log truncation is delayed.
    pub fn take_checkpoint_error(&mut self) -> Option<EngineError> {
        self.durable_mut()
            .as_mut()
            .and_then(|d| d.checkpoint_error.take())
    }

    /// Log a committed transaction's differentials; on failure, undo the
    /// in-memory commit so memory and disk stay in agreement, and surface
    /// the durability error.
    pub(crate) fn log_commit(&mut self, deltas: Vec<RelationDelta>) -> crate::error::Result<()> {
        if deltas.is_empty() {
            return Ok(());
        }
        let record = WalRecord::Commit { deltas };
        if let Err(e) = self.wal_append(&record) {
            let WalRecord::Commit { deltas } = record else {
                unreachable!("record built as Commit two lines up")
            };
            for d in &deltas {
                // Best-effort rollback of an already-applied commit; the
                // deltas came out of this very commit, so unapplying them
                // cannot fail on a consistent database.
                let _ = d.unapply(self.database_mut());
            }
            return Err(e);
        }
        Ok(())
    }

    /// Take a checkpoint now: snapshot the full engine state, write it
    /// atomically, then truncate the WAL and prune older checkpoints.
    /// Returns the LSN the checkpoint covers. Requires attached
    /// durability.
    pub fn checkpoint(&mut self) -> crate::error::Result<u64> {
        let lsn = {
            let state = self
                .durable()
                .as_ref()
                .ok_or_else(|| EngineError::Durability(no_durability()))?;
            state.wal.last_lsn().unwrap_or(state.checkpoint_lsn)
        };
        let ckpt = self.snapshot(lsn);
        let dir = self.durable().as_ref().unwrap().dir.clone();
        ckpt.write_atomic(&dir).map_err(EngineError::Durability)?;
        let state = self.durable_mut().as_mut().unwrap();
        // Only after the snapshot is durable may the log shrink.
        state.wal.reset().map_err(EngineError::Durability)?;
        state.checkpoint_lsn = lsn;
        state.frames_since_checkpoint = 0;
        prune_checkpoints(&dir, lsn);
        Ok(lsn)
    }

    /// Build a [`Checkpoint`] of the current engine state covering `lsn`.
    fn snapshot(&self, lsn: u64) -> Checkpoint {
        let db = self.database();
        Checkpoint {
            lsn,
            logical_time: db.logical_time(),
            config: encode_config(self.config()),
            schema: (**self.catalog().schema()).clone(),
            rules: self
                .catalog()
                .rules()
                .iter()
                .map(|r| (r.name.clone(), r.canonical_text()))
                .collect(),
            views: self
                .views()
                .iter()
                .map(|v| (v.name.clone(), v.definition.to_string()))
                .collect(),
            relations: db
                .iter()
                .map(|(name, rel)| (name.to_owned(), rel.sorted_tuples()))
                .collect(),
        }
    }

    /// Recover an engine from a durability directory: load the newest
    /// valid checkpoint, replay the WAL's valid prefix beyond it, truncate
    /// any torn tail at the frame boundary, and reopen the log for
    /// appending. The recovered engine's configuration (enforcement mode,
    /// durability knobs) comes from the checkpoint.
    pub fn recover(dir: &Path) -> Result<Recovered, RecoveryError> {
        Engine::recover_with_failpoints(dir, Failpoints::none())
    }

    /// [`Engine::recover`] with fault injection armed on the reopened log.
    pub fn recover_with_failpoints(
        dir: &Path,
        points: Failpoints,
    ) -> Result<Recovered, RecoveryError> {
        // 1. Newest checkpoint that actually loads; fall back on damage.
        let candidates = list_checkpoints(dir)?;
        let mut rejected = Vec::new();
        let mut loaded = None;
        for (_, path) in &candidates {
            match Checkpoint::load(path) {
                Ok(ck) => {
                    loaded = Some(ck);
                    break;
                }
                Err(e) => rejected.push(e),
            }
        }
        let Some(ckpt) = loaded else {
            return Err(RecoveryError::NoCheckpoint {
                dir: dir.display().to_string(),
                rejected,
            });
        };

        // 2. Rebuild the engine from the snapshot.
        let config =
            decode_config(&ckpt.config).map_err(|detail| RecoveryError::Rebuild { detail })?;
        let mut engine = Engine::with_config(ckpt.schema.clone(), config);
        for (name, text) in &ckpt.rules {
            let rule = parse_rule(text, name).map_err(|e| RecoveryError::Rebuild {
                detail: format!("rule `{name}`: {e}"),
            })?;
            engine
                .add_rule_unlogged(rule)
                .map_err(|e| RecoveryError::Rebuild {
                    detail: format!("rule `{name}`: {e}"),
                })?;
        }
        for (name, definition) in &ckpt.views {
            let expr = tm_algebra::parser::parse_relexpr(definition).map_err(|e| {
                RecoveryError::Rebuild {
                    detail: format!("view `{name}`: {e}"),
                }
            })?;
            // The maintenance rule and materialized contents are already
            // restored (rules list / relation snapshot); only re-register.
            engine.restore_view(ViewDef::new(name.clone(), expr));
        }
        for (name, tuples) in &ckpt.relations {
            engine
                .database_mut()
                .extend(name, tuples.iter().cloned())
                .map_err(|e| RecoveryError::Rebuild {
                    detail: format!("relation `{name}`: {e}"),
                })?;
        }
        engine.database_mut().set_logical_time(ckpt.logical_time);

        // 3. Replay the log's valid prefix past the checkpoint.
        let wal_path = dir.join(WAL_FILE);
        let scan = scan_wal(&wal_path)?;
        let mut frames_replayed = 0u64;
        let mut recovered_lsn = ckpt.lsn;
        for frame in &scan.frames {
            if frame.lsn <= ckpt.lsn {
                continue; // already inside the checkpoint
            }
            engine
                .replay(&frame.record)
                .map_err(|e| RecoveryError::Replay {
                    lsn: frame.lsn,
                    detail: e.to_string(),
                })?;
            frames_replayed += 1;
            recovered_lsn = frame.lsn;
        }

        // 4. Truncate the torn tail (frame boundary, never mid-log) and
        //    reopen for appending.
        let next_lsn = scan.last_lsn().map(|l| l + 1).unwrap_or(ckpt.lsn + 1);
        let wal = if wal_path.exists() {
            Wal::open_append(&wal_path, scan.valid_len, next_lsn, points.clone())?
        } else {
            Wal::create(&wal_path, next_lsn, points.clone())?
        };
        engine.set_durable(Some(Box::new(DurableState {
            dir: dir.to_owned(),
            wal,
            points,
            checkpoint_lsn: ckpt.lsn,
            frames_since_checkpoint: frames_replayed,
            checkpoint_error: None,
        })));
        Ok(Recovered {
            engine,
            report: RecoveryReport {
                checkpoint_lsn: ckpt.lsn,
                recovered_lsn,
                frames_replayed,
                truncated_tail: scan.corruption.map(|c| (scan.valid_len, c.to_string())),
            },
        })
    }

    /// Apply one WAL record to this engine during recovery, through the
    /// same code paths live execution uses (minus the logging).
    fn replay(&mut self, record: &WalRecord) -> crate::error::Result<()> {
        match record {
            WalRecord::Commit { deltas } => {
                for d in deltas {
                    d.apply(self.database_mut())?;
                }
                self.database_mut().tick();
                Ok(())
            }
            WalRecord::AddRule { name, text } => {
                let rule =
                    parse_rule(text, name).map_err(|e| EngineError::RuleParse(e.to_string()))?;
                self.add_rule_unlogged(rule)
            }
            WalRecord::RemoveRule { name } => {
                self.remove_rule_unlogged(name);
                Ok(())
            }
            WalRecord::DefineView { name, definition } => {
                let expr = tm_algebra::parser::parse_relexpr(definition)
                    .map_err(|e| EngineError::View(e.to_string()))?;
                self.define_view_unlogged(ViewDef::new(name.clone(), expr))
                    .map(|_rule_name| ())
            }
            WalRecord::Load { relation, tuples } => {
                self.database_mut()
                    .extend(relation, tuples.iter().cloned())?;
                Ok(())
            }
        }
    }
}

fn no_durability() -> DurableError {
    DurableError::Io {
        op: "checkpoint".to_owned(),
        path: String::new(),
        detail: "engine has no durability attached (call make_durable first)".to_owned(),
    }
}
