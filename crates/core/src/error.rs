//! Errors of the transaction modification engine.

use std::fmt;

use tm_relational::ValueType;

/// Convenience alias used throughout `txmod`.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised by rule management and transaction modification.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A rule failed to parse.
    RuleParse(String),
    /// A rule's condition failed analysis or ground-truth evaluation —
    /// distinct from [`EngineError::RuleParse`]: the text was well-formed,
    /// evaluating it against a state (or analysing it for evaluation) is
    /// what failed.
    Eval(String),
    /// A parameter binding has the wrong number of values for the
    /// prepared transaction it was offered to.
    ParamArity {
        /// Parameter slots the template declares (`?0` … `?(expected-1)`).
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A parameter value does not conform to the attribute domain its
    /// placeholder feeds (fast definition-time check; the executor's
    /// base-relation validation remains authoritative).
    ParamType {
        /// Zero-based parameter index.
        index: usize,
        /// Expected attribute domain.
        expected: ValueType,
        /// Rendering of the offending value.
        value: String,
    },
    /// A [`crate::prepared::StatementId`] did not name a prepared
    /// statement of this session.
    UnknownStatement(usize),
    /// A rule's condition failed translation.
    Translate(tm_translate::TranslateError),
    /// The rule set has triggering cycles (Definition 6.1) and the engine
    /// is configured to reject them.
    TriggeringCycle(Vec<Vec<String>>),
    /// A rule with this name already exists.
    DuplicateRule(String),
    /// A compensating action failed static typechecking at definition
    /// time (unknown relation, arity mismatch, domain violation).
    InvalidAction {
        /// The rule being defined.
        rule: String,
        /// What the typechecker rejected.
        detail: String,
    },
    /// The transaction modification recursion exceeded its round budget —
    /// only possible with cyclic rule sets admitted via
    /// [`crate::engine::EngineConfig::allow_cycles`] whose cycles the
    /// static analysis could not refute.
    ModificationDiverged {
        /// Rounds executed before giving up.
        rounds: usize,
        /// A triggering cycle path that survived semantic refinement
        /// (first rule repeated at the end), when one is known.
        cycle: Vec<String>,
    },
    /// First-committer-wins serialization conflict: between this
    /// execution's snapshot and its commit, another session committed a
    /// transaction whose differentials invalidate it (a tuple-level write
    /// overlap, or a write to a relation this execution's checks read).
    /// The execution had **no effect** — the authoritative state is
    /// untouched — and is safe to retry on a fresh snapshot.
    Conflict {
        /// The relation both transactions touched.
        relation: String,
        /// Epoch of the commit this execution lost to.
        committed_epoch: u64,
        /// `true` when the conflict hit the read half of the footprint
        /// (the loser's checks read a relation the winner wrote).
        read: bool,
    },
    /// A durability failure: the commit (or catalog change) could not be
    /// made stable, and its in-memory effect was rolled back so memory and
    /// disk stay in agreement. Carries file/offset/LSN context from the
    /// durability layer.
    Durability(tm_durable::DurableError),
    /// Data error from the relational substrate.
    Relational(tm_relational::RelationalError),
    /// Execution error from the algebra substrate.
    Algebra(tm_algebra::AlgebraError),
    /// A view definition was invalid.
    View(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::RuleParse(m) => write!(f, "rule parse error: {m}"),
            EngineError::Eval(m) => write!(f, "constraint evaluation error: {m}"),
            EngineError::ParamArity { expected, got } => write!(
                f,
                "parameter arity mismatch: template takes {expected} value(s), {got} given"
            ),
            EngineError::ParamType {
                index,
                expected,
                value,
            } => write!(
                f,
                "parameter ?{index} expects a value of type {expected:?}, got `{value}`"
            ),
            EngineError::UnknownStatement(id) => {
                write!(f, "no prepared statement with id {id} in this session")
            }
            EngineError::Translate(e) => write!(f, "rule translation error: {e}"),
            EngineError::TriggeringCycle(cycles) => {
                write!(f, "rule set has triggering cycles:")?;
                for c in cycles {
                    write!(f, " [{}]", c.join(" -> "))?;
                }
                Ok(())
            }
            EngineError::DuplicateRule(n) => write!(f, "rule `{n}` already exists"),
            EngineError::InvalidAction { rule, detail } => {
                write!(f, "rule `{rule}` has an invalid action: {detail}")
            }
            EngineError::ModificationDiverged { rounds, cycle } => {
                write!(
                    f,
                    "transaction modification did not reach a fixpoint after {rounds} rounds"
                )?;
                if !cycle.is_empty() {
                    write!(f, " (unproven triggering cycle: {})", cycle.join(" -> "))?;
                }
                Ok(())
            }
            EngineError::Conflict {
                relation,
                committed_epoch,
                read,
            } => write!(
                f,
                "serialization conflict on `{relation}`: a transaction committed at epoch \
                 {committed_epoch} {} this execution's snapshot; retry on a fresh snapshot",
                if *read {
                    "wrote a relation read by"
                } else {
                    "wrote tuples written by"
                }
            ),
            EngineError::Durability(e) => write!(f, "durability failure: {e}"),
            EngineError::Relational(e) => write!(f, "{e}"),
            EngineError::Algebra(e) => write!(f, "{e}"),
            EngineError::View(m) => write!(f, "view definition error: {m}"),
        }
    }
}

impl EngineError {
    /// Whether the failure is transient and the same execution can be
    /// retried verbatim on a fresh snapshot ([`EngineError::Conflict`]).
    pub fn is_retryable(&self) -> bool {
        matches!(self, EngineError::Conflict { .. })
    }
}

impl std::error::Error for EngineError {}

impl From<tm_translate::TranslateError> for EngineError {
    fn from(e: tm_translate::TranslateError) -> Self {
        EngineError::Translate(e)
    }
}

impl From<tm_durable::DurableError> for EngineError {
    fn from(e: tm_durable::DurableError) -> Self {
        EngineError::Durability(e)
    }
}

impl From<tm_relational::RelationalError> for EngineError {
    fn from(e: tm_relational::RelationalError) -> Self {
        EngineError::Relational(e)
    }
}

impl From<tm_algebra::AlgebraError> for EngineError {
    fn from(e: tm_algebra::AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_cycle_error() {
        let e = EngineError::TriggeringCycle(vec![vec!["a".into(), "b".into()]]);
        assert!(e.to_string().contains("a -> b"));
    }
}
