//! Integrity programs (Definition 6.3) and their generation
//! (Algorithm 6.1).
//!
//! > "Integrity rules are optimized and translated each time a transaction
//! > is modified. Clearly, this is not necessary, as rules can be optimized
//! > and translated once when they are specified. The translated form is
//! > then stored for use at constraint enforcement time."
//!
//! An integrity program is the pair `K = (t, p)`: the trigger set `t`
//! stored together with the translated program `p`, extended (as the paper
//! suggests) with the non-triggering flag of Definition 6.2. The
//! differential variant stores one program *per trigger* (§5.2.1 / \[7\]),
//! which the engine's `Differential` mode selects individually.

use tm_algebra::Program;
use tm_relational::DatabaseSchema;
use tm_rules::{IntegrityRule, Trigger, TriggerSet};
use tm_translate::{differential_programs, trans_r, DifferentialProgram};

use crate::error::Result;

/// An integrity program `K = (t, p)` (Definition 6.3) with the
/// non-triggering extension.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityProgram {
    /// Name of the originating rule.
    pub name: String,
    /// The trigger set `t` — `triggers(K)` in the paper's notation.
    pub triggers: TriggerSet,
    /// The triggered program `p` — `action(K)`.
    pub program: Program,
    /// Definition 6.2 flag: the program never triggers other rules.
    pub non_triggering: bool,
    /// Per-trigger differential specializations (empty when the engine
    /// compiled without the differential optimization).
    pub by_trigger: Vec<DifferentialProgram>,
}

impl IntegrityProgram {
    /// `triggers(K)` accessor.
    pub fn triggers(&self) -> &TriggerSet {
        &self.triggers
    }

    /// `action(K)` accessor.
    pub fn action(&self) -> &Program {
        &self.program
    }

    /// The program to run for a specific trigger under differential
    /// enforcement; falls back to the full program when no specialization
    /// was compiled for that trigger.
    pub fn program_for_trigger(&self, t: &Trigger) -> &Program {
        self.by_trigger
            .iter()
            .find(|d| &d.trigger == t)
            .map(|d| &d.program)
            .unwrap_or(&self.program)
    }
}

/// `GetIntP` (Algorithm 6.1): compile a rule into its integrity program.
/// When `differential` is set, per-trigger delta programs are compiled as
/// well (`OptR`'s differential-relation technique).
pub fn get_int_p(
    rule: &IntegrityRule,
    schema: &DatabaseSchema,
    differential: bool,
) -> Result<IntegrityProgram> {
    let translated = trans_r(rule, schema)?;
    let by_trigger = if differential {
        differential_programs(rule, schema)?
    } else {
        Vec::new()
    };
    Ok(IntegrityProgram {
        name: translated.name,
        triggers: translated.triggers,
        program: translated.program,
        non_triggering: translated.non_triggering,
        by_trigger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::schema::beer_schema;
    use tm_rules::parse_rule;

    fn r2() -> IntegrityRule {
        parse_rule(
            "IF NOT forall x (x in beer implies \
             exists y (y in brewery and x.brewery = y.name)) THEN abort",
            "r2",
        )
        .unwrap()
    }

    #[test]
    fn compiles_full_program() {
        let k = get_int_p(&r2(), &beer_schema(), false).unwrap();
        assert_eq!(k.name, "r2");
        assert_eq!(k.triggers().to_string(), "INS(beer), DEL(brewery)");
        assert!(k.action().to_string().contains("antijoin"));
        assert!(k.by_trigger.is_empty());
        // Without specializations every trigger maps to the full program.
        assert_eq!(k.program_for_trigger(&Trigger::ins("beer")), k.action());
    }

    #[test]
    fn compiles_differential_programs() {
        let k = get_int_p(&r2(), &beer_schema(), true).unwrap();
        assert_eq!(k.by_trigger.len(), 2);
        let ins = k.program_for_trigger(&Trigger::ins("beer"));
        assert!(ins.to_string().contains("beer@ins"));
        let del = k.program_for_trigger(&Trigger::del("brewery"));
        assert!(del.to_string().contains("brewery@del"));
        // Unknown trigger falls back to the full check.
        assert_eq!(k.program_for_trigger(&Trigger::del("beer")), k.action());
    }
}
