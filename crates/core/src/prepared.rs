//! Prepared transactions and the session API — run `ModT` once, bind and
//! execute many times.
//!
//! The point of the *static* approach (§6, Algorithm 6.2 / Definition 6.3)
//! is to move integrity work from enforcement time to definition time.
//! [`crate::Engine::execute`] stops halfway: rules are compiled once, but
//! every submission still pays rule **selection** over the whole catalog,
//! program **concatenation**, and the construction of a fresh transaction
//! AST. A hot workload of millions of structurally identical transactions
//! pays that modification cost millions of times.
//!
//! This module finishes the move:
//!
//! * [`crate::Engine::prepare`] runs `ModT` **once** over a transaction
//!   *template* — a transaction whose constants may be parameter
//!   placeholders `?0`, `?1`, … ([`ScalarExpr::Param`]) — and compiles the
//!   modified result into an execution plan ([`tm_algebra::ExecPlan`]),
//! * [`Prepared::bind`] checks a value vector against the template's
//!   parameter arity and the attribute domains its placeholders feed,
//!   producing a [`BoundTransaction`],
//! * [`crate::Engine::execute_bound`] (and the session-level
//!   [`Session::execute_prepared`]) runs the plan against the binding —
//!   no per-execution rule selection, no program concatenation, no AST
//!   construction, no per-statement analysis.
//!
//! A [`Session`] owns prepared statements on behalf of a client and serves
//! **consistent read snapshots** ([`Session::snapshot`]): an O(#relations)
//! copy-on-write clone of the engine state, so readers never block the
//! writer and never see a transaction's intermediate states.
//!
//! ## Plan invalidation
//!
//! A prepared plan encodes the rule catalog *as of* [`crate::Engine::prepare`].
//! The engine stamps every catalog change with a monotonically increasing
//! epoch; executing a plan whose epoch is behind re-runs `ModT` from the
//! original template, so a rule added after `prepare` is still enforced
//! (stale-plan safety — property-tested in `tests/prepared_equivalence.rs`).
//! [`Session::execute_prepared`] refreshes the stored plan in place;
//! [`crate::Engine::execute_bound`] on a caller-held stale [`Prepared`]
//! re-modifies per call until the caller re-prepares.

use tm_algebra::{ExecPlan, RelExpr, ScalarExpr, Statement, Transaction};
use tm_relational::{Database, DatabaseSchema, Value, ValueType};

use crate::engine::{Engine, EngineOutcome, ModStats};
use crate::error::{EngineError, Result};
use crate::modify::SpecializationReport;

/// A prepared transaction: the `ModT`-modified template compiled into an
/// execution plan, with parameter metadata and the catalog epoch it was
/// prepared under. Produced by [`crate::Engine::prepare`]; executed by
/// binding values ([`Prepared::bind`]) and submitting the binding to
/// [`crate::Engine::execute_bound`] or [`Session::execute_prepared`].
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The transaction as submitted — `ModT` re-runs from here when the
    /// plan goes stale.
    source: Transaction,
    /// The modified template, compiled (statement analysis cached).
    plan: ExecPlan,
    /// Expected attribute domain per parameter slot, where the template
    /// determines one (a placeholder feeding a base-relation row position
    /// or update assignment). `None` slots are checked only by the
    /// executor's authoritative base-relation validation.
    expected: Vec<Option<ValueType>>,
    /// The `ModT` trace of the preparation.
    modification: ModStats,
    /// The specialization provenance of the preparation: which rules were
    /// never triggered, dropped with a proof, reduced to probes, or kept
    /// generic.
    specialization: SpecializationReport,
    /// [`SpecializationReport::summary`], collapsed once at build so hot
    /// executions report per-call check counts without re-walking the
    /// decision list.
    summary: crate::modify::CheckSummary,
    /// Catalog epoch this plan encodes.
    epoch: u64,
    /// Whether the plan executes exactly the submitted statements —
    /// `Off` mode, an untriggered template, or a template whose every
    /// selected check was dropped by a specialization proof.
    verbatim: bool,
    /// Index of the first statement `ModT` appended — the boundary the
    /// per-check instrumentation times from (alarms before it belong to
    /// the user program, not to a rule).
    checks_from: usize,
    /// Per selection decision, in append order: the rule name and how
    /// many of its appended statements are `alarm`s. Zipping these counts
    /// against [`tm_algebra::CheckTimings::ns`] attributes each timed
    /// check to the rule whose selection appended it.
    timed_checks: Vec<(String, usize)>,
}

impl Prepared {
    pub(crate) fn build(
        source: Transaction,
        template: Transaction,
        schema: &DatabaseSchema,
        modification: ModStats,
        specialization: SpecializationReport,
        epoch: u64,
        verbatim: bool,
    ) -> Prepared {
        let n = template.param_count();
        let expected = expected_param_types(&template, schema, n);
        let checks_from = source.debracket().len();
        let stmts = template.debracket().statements();
        let mut timed_checks = Vec::with_capacity(specialization.decisions.len());
        let mut pos = checks_from;
        for d in &specialization.decisions {
            let end = (pos + d.appended).min(stmts.len());
            let alarms = stmts[pos..end]
                .iter()
                .filter(|s| matches!(s, Statement::Alarm(_)))
                .count();
            timed_checks.push((d.rule.clone(), alarms));
            pos = end;
        }
        Prepared {
            source,
            plan: ExecPlan::compile(template),
            expected,
            modification,
            summary: specialization.summary(),
            specialization,
            epoch,
            verbatim,
            checks_from,
            timed_checks,
        }
    }

    /// Index of the first statement `ModT` appended to the source
    /// transaction — alarms/probes from here on belong to rule checks.
    pub fn checks_from(&self) -> usize {
        self.checks_from
    }

    /// Per selection decision, in append order: the rule name and the
    /// number of timed checks (alarm statements, or fast-path check/probe
    /// ops — the counts coincide) its selection appended. Zipping these
    /// counts against [`EngineOutcome::check_times_ns`] attributes each
    /// per-check latency sample to its rule.
    pub fn check_attribution(&self) -> &[(String, usize)] {
        &self.timed_checks
    }

    /// [`SpecializationReport::summary`] of this plan, precomputed.
    pub fn check_summary(&self) -> crate::modify::CheckSummary {
        self.summary
    }

    /// The transaction as originally submitted to `prepare`.
    pub fn source(&self) -> &Transaction {
        &self.source
    }

    /// The `ModT`-modified template this plan executes.
    pub fn transaction(&self) -> &Transaction {
        self.plan.transaction()
    }

    /// The compiled execution plan.
    pub(crate) fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Number of parameter slots the template requires (0 = ground).
    pub fn param_count(&self) -> usize {
        self.plan.param_count()
    }

    /// The `ModT` statistics of the preparation (rounds, rules fired,
    /// statements appended). Executions through a reused plan report an
    /// empty per-execution trace — the modification happened here, once.
    pub fn modification(&self) -> &ModStats {
        &self.modification
    }

    /// Whether the plan executes exactly the submitted statements: `Off`
    /// mode, an untriggered template, or a template whose every selected
    /// check was dropped by a specialization proof. `false` whenever
    /// modification (specialized or not) changed the check plan.
    pub fn verbatim(&self) -> bool {
        self.verbatim
    }

    /// The specialization provenance of this plan: per selected rule,
    /// whether its check was dropped (with proof), reduced to point
    /// probes, or kept generic — plus how many catalog rules were never
    /// triggered at all.
    pub fn specialization(&self) -> &SpecializationReport {
        &self.specialization
    }

    /// The catalog epoch this plan was prepared under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the engine's rule catalog changed since this plan was
    /// prepared. A stale plan is never executed as-is: the engine
    /// re-modifies from [`Prepared::source`] instead.
    pub fn is_stale(&self, engine: &Engine) -> bool {
        self.epoch != engine.plan_epoch()
    }

    pub(crate) fn into_transaction(self) -> Transaction {
        self.plan.into_transaction()
    }

    /// Bind a value vector to the template's placeholders, checking arity
    /// (exactly [`Prepared::param_count`] values) and — where the template
    /// pins a placeholder to an attribute — the value's domain. `Null`
    /// conforms to every domain, as in base-relation validation.
    pub fn bind<'p>(&'p self, values: &[Value]) -> Result<BoundTransaction<'p>> {
        self.check_binding(values)?;
        Ok(BoundTransaction {
            prepared: self,
            values: values.to_vec(),
        })
    }

    /// The validation half of [`Prepared::bind`] — arity and domain
    /// checks without materializing a [`BoundTransaction`]. The hot
    /// session path validates with this and executes straight off the
    /// caller's slice, so a binding never allocates.
    pub(crate) fn check_binding(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.param_count() {
            return Err(EngineError::ParamArity {
                expected: self.param_count(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            if let Some(ty) = self.expected[i] {
                if !v.conforms_to(ty) {
                    return Err(EngineError::ParamType {
                        index: i,
                        expected: ty,
                        value: v.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A prepared transaction together with a checked parameter binding —
/// everything [`crate::Engine::execute_bound`] needs. The binding does
/// **not** materialize a substituted AST: the executor resolves
/// placeholders against the value vector directly, so a bind is O(#params)
/// regardless of template size. [`BoundTransaction::substituted`] produces
/// the ground transaction the binding denotes when one is wanted.
#[derive(Debug, Clone)]
pub struct BoundTransaction<'p> {
    prepared: &'p Prepared,
    values: Vec<Value>,
}

impl<'p> BoundTransaction<'p> {
    /// The prepared statement this binding belongs to.
    pub fn prepared(&self) -> &'p Prepared {
        self.prepared
    }

    /// The bound parameter values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Materialize the ground transaction this binding denotes (every
    /// `?i` replaced by its value). The prepared execution path never
    /// builds this; it is the semantic reference — executing the
    /// substituted transaction ad hoc commits/aborts identically — and
    /// useful for logging and inspection.
    pub fn substituted(&self) -> Transaction {
        self.prepared.plan.transaction().bind_params(&self.values)
    }
}

/// A client session over an engine: owns prepared statements, executes
/// bindings against them (refreshing stale plans in place), and serves
/// consistent O(#relations) read snapshots of the database. Obtained from
/// [`crate::Engine::session`]; dropping it releases the engine borrow
/// (prepared statements die with the session, as in any statement-oriented
/// client protocol).
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e mut Engine,
    statements: Vec<Prepared>,
}

/// Handle to a prepared statement owned by a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatementId(pub(crate) usize);

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e mut Engine) -> Session<'e> {
        Session {
            engine,
            statements: Vec::new(),
        }
    }

    /// The underlying engine (read access).
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The full static analysis of the engine's current rule set
    /// (diagnostics, pruned triggering edges, termination certificate)
    /// — see [`crate::Engine::validate_full`].
    pub fn analysis(&self) -> tm_analyze::AnalysisReport {
        self.engine.validate_full()
    }

    /// Declare a constraint mid-session (see
    /// [`crate::Engine::define_constraint`]). Statements prepared earlier
    /// in this session go stale and are re-modified on their next
    /// execution — the new constraint is enforced on them too.
    pub fn define_constraint(&mut self, name: &str, cl: &str) -> Result<()> {
        self.engine.define_constraint(name, cl)
    }

    /// Add a rule from RL text mid-session (see
    /// [`crate::Engine::add_rule_text`]); same staleness consequences as
    /// [`Session::define_constraint`].
    pub fn add_rule_text(&mut self, text: &str, default_name: &str) -> Result<()> {
        self.engine.add_rule_text(text, default_name)
    }

    /// Prepare a transaction template: one `ModT` run, stored for the
    /// session's lifetime.
    pub fn prepare(&mut self, tx: &Transaction) -> Result<StatementId> {
        let prepared = self.engine.prepare(tx)?;
        self.statements.push(prepared);
        Ok(StatementId(self.statements.len() - 1))
    }

    /// Look up a prepared statement.
    pub fn prepared(&self, id: StatementId) -> Result<&Prepared> {
        self.statements
            .get(id.0)
            .ok_or(EngineError::UnknownStatement(id.0))
    }

    /// Number of statements prepared in this session.
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// Bind `params` to a prepared statement and execute it. When the
    /// rule catalog changed since the statement was prepared, the plan is
    /// re-modified from its source and the stored statement replaced
    /// first (the outcome then reports `reused_plan: false` and the fresh
    /// modification trace).
    pub fn execute_prepared(&mut self, id: StatementId, params: &[Value]) -> Result<EngineOutcome> {
        let slot = self
            .statements
            .get_mut(id.0)
            .ok_or(EngineError::UnknownStatement(id.0))?;
        let refreshed = if slot.is_stale(self.engine) {
            *slot = self.engine.prepare(slot.source())?;
            true
        } else {
            false
        };
        let mut out = {
            slot.check_binding(params)?;
            self.engine.execute_checked(slot, params)?
        };
        if refreshed {
            out.reused_plan = false;
            out.modification = slot.modification().clone();
        }
        Ok(out)
    }

    /// Execute an ad-hoc transaction through the engine (prepare + empty
    /// bind, not retained).
    pub fn execute(&mut self, tx: &Transaction) -> Result<EngineOutcome> {
        self.engine.execute(tx)
    }

    /// A consistent read snapshot of the current database state —
    /// O(#relations) reference-count bumps on the copy-on-write tuple
    /// storage, no tuple is copied. The snapshot is an independent
    /// [`Database`] value: later writes through this session (or the
    /// engine) unshare only the relations they touch, so readers never
    /// block the writer and never observe a transaction's intermediate
    /// states.
    pub fn snapshot(&self) -> Database {
        self.engine.database().clone()
    }

    /// Take (and clear) the deferred error of the most recent failed
    /// automatic checkpoint, if any — see
    /// [`crate::Engine::take_checkpoint_error`]. Auto-checkpoints run
    /// inside commits, which cannot fail for a checkpoint problem (the
    /// commit itself is already durable), so the engine parks the error;
    /// session holders — and the service front-end's health reporting —
    /// poll it here without needing `&mut Engine` access of their own.
    pub fn take_checkpoint_error(&mut self) -> Option<EngineError> {
        self.engine.take_checkpoint_error()
    }
}

/// Derive the expected attribute domain per parameter slot from the
/// statements of a template: a placeholder at row position `j` of an
/// insert/delete `row(…)` source into base relation `R` must conform to
/// `R`'s attribute `j`; a placeholder assigned to attribute `j` by an
/// update does too. Placeholders in other positions (predicates,
/// arithmetic) are unconstrained here — the executor's base-relation
/// validation remains authoritative. When the same placeholder feeds two
/// differently-typed positions, the first is checked at bind time and the
/// executor reports the other.
fn expected_param_types(
    tx: &Transaction,
    schema: &DatabaseSchema,
    n: usize,
) -> Vec<Option<ValueType>> {
    let mut expected: Vec<Option<ValueType>> = vec![None; n];
    let note = |expected: &mut Vec<Option<ValueType>>, i: usize, ty: ValueType| {
        if let Some(slot) = expected.get_mut(i) {
            if slot.is_none() {
                *slot = Some(ty);
            }
        }
    };
    for stmt in tx.debracket().statements() {
        match stmt {
            Statement::Insert { relation, source } | Statement::Delete { relation, source } => {
                let RelExpr::Singleton(exprs) = source else {
                    continue;
                };
                let Ok(rs) = schema.relation(relation) else {
                    continue;
                };
                for (pos, e) in exprs.iter().enumerate() {
                    if let ScalarExpr::Param(i) = e {
                        if let Some(attr) = rs.attributes().get(pos) {
                            note(&mut expected, *i, attr.value_type());
                        }
                    }
                }
            }
            Statement::Update { relation, set, .. } => {
                let Ok(rs) = schema.relation(relation) else {
                    continue;
                };
                for a in set {
                    if let ScalarExpr::Param(i) = &a.value {
                        if let Some(attr) = rs.attributes().get(a.position) {
                            note(&mut expected, *i, attr.value_type());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::beer_engine;
    use crate::EnforcementMode;
    use tm_algebra::builder::TransactionBuilder;
    use tm_relational::Tuple;

    fn engine() -> Engine {
        let mut e = beer_engine(EnforcementMode::Static);
        e.define_constraint("r1", "forall x (x in beer implies x.alcohol >= 0)")
            .unwrap();
        e.load("brewery", vec![Tuple::of(("guineken", "dublin", "ie"))])
            .unwrap();
        e
    }

    fn template() -> Transaction {
        TransactionBuilder::new().insert_params("beer", 4).build()
    }

    #[test]
    fn prepare_runs_modt_once_and_counts_params() {
        let e = engine();
        let p = e.prepare(&template()).unwrap();
        assert_eq!(p.param_count(), 4);
        assert_eq!(p.modification().rounds, 1);
        assert!(p.transaction().len() > p.source().len());
        assert!(!p.verbatim());
        assert!(!p.is_stale(&e));
    }

    #[test]
    fn bind_checks_arity() {
        let e = engine();
        let p = e.prepare(&template()).unwrap();
        let err = p.bind(&[Value::str("a")]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::ParamArity {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn bind_checks_types_against_schema() {
        let e = engine();
        let p = e.prepare(&template()).unwrap();
        // beer(name: Str, type: Str, brewery: Str, alcohol: Double) — an
        // Int where a Str is expected is rejected at bind time.
        let err = p
            .bind(&[
                Value::Int(3),
                Value::str("stout"),
                Value::str("guineken"),
                Value::double(5.0),
            ])
            .unwrap_err();
        assert!(matches!(err, EngineError::ParamType { index: 0, .. }));
        // Null conforms to every domain.
        assert!(p
            .bind(&[
                Value::Null,
                Value::str("stout"),
                Value::str("guineken"),
                Value::double(5.0),
            ])
            .is_ok());
    }

    #[test]
    fn substituted_matches_manual_binding() {
        let e = engine();
        let p = e.prepare(&template()).unwrap();
        let bound = p
            .bind(&[
                Value::str("pils"),
                Value::str("lager"),
                Value::str("guineken"),
                Value::double(5.0),
            ])
            .unwrap();
        let ground = bound.substituted();
        assert_eq!(ground.param_count(), 0);
        assert!(ground.to_string().contains("\"pils\""));
    }

    #[test]
    fn unknown_statement_id_reported() {
        let mut e = engine();
        let mut s = e.session();
        let err = s.execute_prepared(StatementId(7), &[]).unwrap_err();
        assert!(matches!(err, EngineError::UnknownStatement(7)));
    }

    #[test]
    fn update_assignment_params_typed() {
        let e = engine();
        let tx = TransactionBuilder::new()
            .update(
                "beer",
                ScalarExpr::true_(),
                vec![tm_algebra::UpdateAssignment::new(3, ScalarExpr::param(0))],
            )
            .build();
        let p = e.prepare(&tx).unwrap();
        assert_eq!(p.param_count(), 1);
        let err = p.bind(&[Value::str("not a double")]).unwrap_err();
        assert!(matches!(err, EngineError::ParamType { index: 0, .. }));
        assert!(p.bind(&[Value::double(4.2)]).is_ok());
    }
}
