//! Multi-version concurrency: snapshot sessions, a serializing commit
//! applier, and first-committer-wins validation on the differentials.
//!
//! The sequential [`Engine`] already has the two ingredients this module
//! composes into a concurrent engine:
//!
//! * **O(#relations) snapshots** — [`Database`] tuple storage is
//!   copy-on-write, so cloning the state is a handful of reference-count
//!   bumps and never copies a tuple;
//! * **net differentials** — every committed execution's effect is its
//!   `R@ins`/`R@del` pair per relation ([`RelationDelta`]), the same
//!   records the durability layer logs.
//!
//! A [`ConcurrentSession`] therefore runs each prepared execution against
//! its own snapshot, entirely outside the engine lock: rule checks — the
//! expensive part of an integrity-enforcing transaction — proceed on as
//! many cores as there are sessions.
//!
//! The snapshot is not re-cloned per execution. A COW clone is cheap to
//! *take*, but the first write to each shared relation pays a full
//! tuple-set copy (the unshare) — per-transaction cloning makes every
//! write O(relation), quadratic over a growing workload. Instead each
//! session keeps one **long-lived private copy** and *rolls it forward*:
//! before an execution, the committed differentials between the copy's
//! epoch and the current one (retained in the epoch log precisely for
//! this) are replayed onto it — O(Δ) per concurrent commit, never a
//! relation copy. The execution then runs on the copy, and its own net
//! deltas are unapplied afterwards, returning the copy to the clean
//! snapshot state (a surviving commit re-enters through the epoch log on
//! the next roll-forward). In the steady state this refresh touches only
//! the epoch log's own mutex — not the engine — so sessions draining
//! commits and sessions starting executions never queue behind each
//! other. A session falls back to a fresh COW clone (under the engine
//! lock) only when it has no copy yet, fell behind the bounded retention
//! window ([`ConcurrentEngine::ROLLFORWARD_RETENTION`]), or an
//! administrator mutated data out-of-band through
//! [`ConcurrentEngine::lock`] (detected via the database's logical clock,
//! which every engine-level data write advances; the administrative
//! guard's release invalidates the copies, and the applier additionally
//! fences any commit whose snapshot predates the write).
//!
//! Only the *commit* serializes, through a flat-combining applier:
//!
//! 1. the execution publishes a [`TxFootprint`] (relations its checks
//!    read, tuples it declared or actually wrote) plus its captured
//!    deltas to a commit queue;
//! 2. whichever committer holds the engine mutex drains the whole queue —
//!    under contention one lock acquisition lands many commits, which is
//!    the group-commit batch: WAL appends coalesce inside a single
//!    critical section and fsyncs amortize per the durability
//!    configuration's `group_commit`;
//! 3. each drained request is validated **first-committer-wins** against
//!    every [`CommittedDelta`] that landed after the request's snapshot
//!    epoch: a tuple-level overlap with the request's writes, or any
//!    write to a relation the request's checks read, fails the request
//!    with the typed, retryable [`EngineError::Conflict`] — the
//!    authoritative state is untouched and the session simply re-executes
//!    on a fresh snapshot.
//!
//! The read half of the footprint is deliberately relation-level: an
//! integrity check's verdict depends on the whole state of the relations
//! it probes, so revalidating reads is what keeps concurrent histories
//! serializable **including write skew through a constraint** (two
//! transactions each preserving an invariant against the other's
//! pre-image). It is also why *aborted* executions pass through the
//! applier: an abort verdict is a function of the snapshot's reads, and it
//! stands only if those reads were not invalidated.
//!
//! Epochs are commit sequence numbers. A freshly recovered engine seeds
//! the counter from the WAL's next LSN ([`Engine::wal_next_lsn`]), so
//! post-recovery sessions can never observe an epoch an earlier
//! incarnation of the database already used.
//!
//! Catalog DDL is fenced rather than versioned: the applier also rejects
//! any request whose *plan* epoch predates the current catalog, because
//! its checks enforced rules that no longer govern — the retry
//! re-prepares (the ordinary staleness path) and re-executes under the
//! new rule set.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use tm_algebra::{CheckTimings, Executor, Transaction};
use tm_relational::{CommittedDelta, Database, RelationDelta, TxFootprint, Value};

use tm_algebra::TxOutcome;

use crate::engine::{Engine, EngineOutcome, ModStats};
use crate::error::{EngineError, Result};
use crate::modify::CheckSummary;
use crate::prepared::{Prepared, StatementId};

/// A thread-safe handle over one [`Engine`]: hands out concurrent
/// snapshot sessions ([`ConcurrentEngine::session`]) whose prepared
/// executions run in parallel and serialize only at commit. Cloning the
/// handle is cheap (an `Arc` bump); all clones drive the same engine.
#[derive(Debug, Clone)]
pub struct ConcurrentEngine {
    shared: Arc<Shared>,
}

#[derive(Debug)]
struct Shared {
    /// The authoritative engine: database, catalog, durability. Held only
    /// to take a snapshot or to drain the commit queue.
    engine: Mutex<Engine>,
    /// Commit requests awaiting the applier. Committers push, then race
    /// for the engine mutex; the winner drains everything (flat
    /// combining), so a slot is guaranteed processed by the time its
    /// owner holds — or has held — the engine lock.
    queue: Mutex<VecDeque<Arc<CommitSlot>>>,
    /// The epoch bookkeeping: recently committed differentials (for
    /// first-committer-wins validation) and the snapshot epochs still in
    /// use (for pruning).
    epochs: Mutex<EpochState>,
    /// The last committed epoch. Incremented only by the applier, under
    /// the engine mutex. Snapshot paths read [`EpochState::newest`]
    /// instead — it moves atomically with the epoch-log push — so this
    /// counter serves reporting ([`ConcurrentEngine::committed_epoch`])
    /// and the applier's own epoch assignment.
    commit_epoch: AtomicU64,
    /// The authoritative database's logical clock as last observed by
    /// this layer (at construction, after every applier publish, when an
    /// administrator's [`EngineGuard`] drops, and at every slow-path
    /// snapshot refresh). A live value that differs means data was
    /// mutated out-of-band, bypassing the epoch log — every cached
    /// session copy is invalid. Only read and written under the engine
    /// mutex.
    auth_time: AtomicU64,
    /// Mirror of [`Engine::plan_epoch`], re-stamped whenever an
    /// administrator's [`EngineGuard`] drops — the only path that moves
    /// the catalog. Lets the fast snapshot path test plan staleness
    /// without the engine mutex; a stale read is harmless because the
    /// applier's catalog fence revalidates under the engine mutex.
    plan_epoch: AtomicU64,
    /// Mirror of [`Engine::check_timing`], maintained like `plan_epoch`.
    check_timing: std::sync::atomic::AtomicBool,
}

#[derive(Debug, Default)]
struct EpochState {
    /// Committed differentials, ascending by epoch. A request with
    /// snapshot epoch `e` validates against the suffix with epoch `> e`;
    /// a session copy at epoch `e` rolls forward by replaying the same
    /// suffix.
    committed: VecDeque<CommittedDelta>,
    /// Snapshot epoch → number of executions currently running against
    /// it. Differentials at or below the minimum active epoch are never
    /// consulted for validation again; they are retained only as the
    /// bounded roll-forward window and pruned past it.
    active: BTreeMap<u64, usize>,
    /// Highest epoch evicted from `committed`: a session copy at or below
    /// it has lost part of its gap and must re-clone instead of rolling
    /// forward.
    pruned_floor: u64,
    /// Epoch of the newest differential actually *in* the log. Unlike
    /// `Shared::commit_epoch` — which the applier bumps momentarily
    /// before pushing — this moves atomically with the push, under this
    /// mutex, so the lock-free snapshot path can roll a copy forward to
    /// exactly this epoch without ever seeing a gap.
    newest: u64,
    /// Bumped (under this mutex) whenever an out-of-band mutation is
    /// detected; session copies record the generation they were cloned
    /// under and re-clone when it has moved. Commit requests carry it
    /// too: the applier refuses a request whose generation predates an
    /// out-of-band write, because the epoch log cannot revalidate the
    /// request against state it never saw.
    generation: u64,
}

/// One commit request parked in the applier queue.
#[derive(Debug)]
struct CommitSlot {
    request: Mutex<Option<CommitRequest>>,
    result: Mutex<Option<Result<u64>>>,
}

#[derive(Debug)]
struct CommitRequest {
    /// The commit epoch of the state the execution ran against.
    snapshot_epoch: u64,
    /// The catalog's plan epoch at snapshot time. The applier refuses the
    /// request (retryable conflict) if the catalog moved while the
    /// execution was in flight: its checks enforced the old rules.
    plan_epoch: u64,
    /// Whether the execution committed on its snapshot (aborted
    /// executions still validate: the abort verdict depends on reads).
    committed: bool,
    /// The cache generation the snapshot was taken under. The applier
    /// refuses the request (retryable conflict, relation
    /// `"<out-of-band>"`) if an out-of-band mutation bumped the
    /// generation while the execution was in flight: its snapshot may
    /// predate state the epoch log cannot validate against.
    generation: u64,
    /// Net differentials captured on the snapshot — what publishing the
    /// commit applies to the authoritative state and logs to the WAL.
    deltas: Vec<RelationDelta>,
    /// What the execution read and wrote, for conflict validation.
    footprint: TxFootprint,
}

impl ConcurrentEngine {
    /// How many committed differentials the epoch log retains *beyond*
    /// what active snapshots still validate against, so that session
    /// copies can roll forward instead of re-cloning. A session more than
    /// this many commits behind (it was idle while others committed)
    /// re-clones once — O(#relations) plus deferred COW unshares — and
    /// is back on the O(Δ) path.
    pub const ROLLFORWARD_RETENTION: usize = 256;

    /// Wrap an engine for concurrent use. The commit-epoch counter seeds
    /// from the WAL's next LSN when durability is attached — after
    /// [`Engine::recover`], epochs resume strictly past every replayed
    /// record instead of restarting at zero.
    pub fn new(engine: Engine) -> ConcurrentEngine {
        let seed = engine.wal_next_lsn().unwrap_or(0);
        let auth_time = engine.database().logical_time();
        let plan_epoch = engine.plan_epoch();
        let check_timing = engine.check_timing();
        ConcurrentEngine {
            shared: Arc::new(Shared {
                engine: Mutex::new(engine),
                queue: Mutex::new(VecDeque::new()),
                epochs: Mutex::new(EpochState {
                    pruned_floor: seed,
                    newest: seed,
                    ..EpochState::default()
                }),
                commit_epoch: AtomicU64::new(seed),
                auth_time: AtomicU64::new(auth_time),
                plan_epoch: AtomicU64::new(plan_epoch),
                check_timing: std::sync::atomic::AtomicBool::new(check_timing),
            }),
        }
    }

    /// Open a snapshot session. Sessions are independent `Send` values —
    /// move each to its own thread; their executions share nothing until
    /// commit.
    pub fn session(&self) -> ConcurrentSession {
        ConcurrentSession {
            shared: self.shared.clone(),
            statements: Vec::new(),
            last_commit: None,
            cache: None,
        }
    }

    /// Exclusive access to the underlying engine, for administration:
    /// defining rules and constraints, loading data, checkpointing.
    /// Holding the guard stalls the commit applier and first-execution
    /// snapshot clones; sessions with a warm private copy keep executing
    /// (their commits queue behind the guard and are fenced if it
    /// mutated anything).
    ///
    /// Catalog changes made through the guard bump the engine's plan
    /// epoch, which fails every in-flight snapshot execution with a
    /// retryable [`EngineError::Conflict`] at commit — a transaction
    /// checked under the old catalog can never publish into the new one.
    /// Data writes (e.g. [`Engine::load`]) advance the database's
    /// logical clock; the guard notices on release and invalidates every
    /// session's cached copy, and the applier refuses any commit whose
    /// snapshot predates the write.
    pub fn lock(&self) -> EngineGuard<'_> {
        EngineGuard {
            guard: self.shared.engine.lock().expect("engine mutex poisoned"),
            shared: &self.shared,
        }
    }

    /// [`ConcurrentEngine::lock`] without blocking: `None` when the
    /// engine is busy (snapshot-taking, commit-draining, or another
    /// administrator). For opportunistic polls — health checks that
    /// should skip a busy engine rather than queue behind it.
    pub fn try_lock(&self) -> Option<EngineGuard<'_>> {
        self.shared.engine.try_lock().ok().map(|guard| EngineGuard {
            guard,
            shared: &self.shared,
        })
    }

    /// The epoch of the most recent commit (the seed value while nothing
    /// has committed).
    pub fn committed_epoch(&self) -> u64 {
        self.shared.commit_epoch.load(Ordering::SeqCst)
    }

    /// How many committed differential records the epoch log currently
    /// retains: everything some active snapshot still validates against,
    /// plus at most [`ConcurrentEngine::ROLLFORWARD_RETENTION`] records
    /// kept for session-copy roll-forward.
    pub fn retained_deltas(&self) -> usize {
        self.shared
            .epochs
            .lock()
            .expect("epoch mutex poisoned")
            .committed
            .len()
    }

    /// A consistent read snapshot of the current committed state.
    pub fn snapshot(&self) -> Database {
        self.lock().database().clone()
    }

    /// Unwrap the handle back into the engine, when this is the last
    /// clone; returns the handle otherwise.
    pub fn try_into_engine(self) -> std::result::Result<Engine, ConcurrentEngine> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared.engine.into_inner().expect("engine mutex poisoned")),
            Err(shared) => Err(ConcurrentEngine { shared }),
        }
    }
}

/// Exclusive administrative access to the engine behind a
/// [`ConcurrentEngine`], from [`ConcurrentEngine::lock`]. Dereferences to
/// [`Engine`]. On release the guard reconciles the concurrent layer with
/// whatever administration just happened: if the database's logical clock
/// moved (data was written outside the epoch log), every session's cached
/// snapshot copy is invalidated and in-flight commits are fenced; the
/// catalog's plan epoch and the check-timing flag are re-mirrored for the
/// lock-free snapshot path.
#[derive(Debug)]
pub struct EngineGuard<'a> {
    guard: MutexGuard<'a, Engine>,
    shared: &'a Shared,
}

impl std::ops::Deref for EngineGuard<'_> {
    type Target = Engine;
    fn deref(&self) -> &Engine {
        &self.guard
    }
}

impl std::ops::DerefMut for EngineGuard<'_> {
    fn deref_mut(&mut self) -> &mut Engine {
        &mut self.guard
    }
}

impl Drop for EngineGuard<'_> {
    // Runs while the engine mutex is still held (the `guard` field drops
    // after this body), so the generation bump is visible to the applier
    // and to slow-path snapshots before any of them can run.
    fn drop(&mut self) {
        let now = self.guard.database().logical_time();
        if self.shared.auth_time.swap(now, Ordering::SeqCst) != now {
            let mut epochs = self.shared.epochs.lock().expect("epoch mutex poisoned");
            epochs.generation += 1;
        }
        self.shared
            .plan_epoch
            .store(self.guard.plan_epoch(), Ordering::SeqCst);
        self.shared
            .check_timing
            .store(self.guard.check_timing(), Ordering::SeqCst);
    }
}

/// A session over a [`ConcurrentEngine`]: owns prepared statements and
/// executes them against its private snapshot copy (rolled forward
/// between transactions by replaying committed differentials), committing
/// through the shared applier. Each
/// [`ConcurrentSession::execute_prepared`] call is one transaction:
/// roll forward, run, validate, publish.
#[derive(Debug)]
pub struct ConcurrentSession {
    shared: Arc<Shared>,
    statements: Vec<Prepared>,
    /// Epoch of this session's most recent successful commit (the global
    /// serialization position of that transaction).
    last_commit: Option<u64>,
    /// The session's long-lived private database copy (see
    /// [`SnapshotCache`]); `None` until the first execution, or after the
    /// copy was invalidated.
    cache: Option<SnapshotCache>,
}

/// A session's private copy of the database: cloned from the
/// authoritative state once, then kept current by replaying committed
/// differentials — O(Δ) per concurrent commit — instead of re-cloning,
/// which would re-share every relation and re-pay a full tuple-set copy
/// (the COW unshare) on the next write to each.
#[derive(Debug)]
struct SnapshotCache {
    db: Database,
    /// The commit epoch whose state the copy currently equals.
    epoch: u64,
    /// The `Shared::cache_generation` the copy was cloned under; a moved
    /// generation means out-of-band administration invalidated it.
    generation: u64,
}

impl ConcurrentSession {
    /// Prepare a transaction template (one `ModT` run under the engine
    /// lock) and retain it in this session.
    pub fn prepare(&mut self, tx: &Transaction) -> Result<StatementId> {
        let prepared = self
            .shared
            .engine
            .lock()
            .expect("engine mutex poisoned")
            .prepare(tx)?;
        self.statements.push(prepared);
        Ok(StatementId(self.statements.len() - 1))
    }

    /// Adopt an externally prepared statement into this session — the
    /// share path for callers (like a server) that keep one canonical
    /// statement list and hand each session its own copy. The adopted
    /// plan re-modifies lazily if the catalog has moved since it was
    /// prepared, exactly like a statement prepared here.
    pub fn adopt(&mut self, prepared: Prepared) -> StatementId {
        self.statements.push(prepared);
        StatementId(self.statements.len() - 1)
    }

    /// Look up a prepared statement.
    pub fn prepared(&self, id: StatementId) -> Result<&Prepared> {
        self.statements
            .get(id.0)
            .ok_or(EngineError::UnknownStatement(id.0))
    }

    /// Number of statements prepared in this session.
    pub fn statement_count(&self) -> usize {
        self.statements.len()
    }

    /// A consistent read snapshot of the current committed state.
    pub fn snapshot(&self) -> Database {
        self.shared
            .engine
            .lock()
            .expect("engine mutex poisoned")
            .database()
            .clone()
    }

    /// Execute a prepared statement as one snapshot transaction.
    ///
    /// In the steady state the engine lock is taken once, briefly — by
    /// whichever committer drains the commit queue, possibly on this
    /// session's behalf. The snapshot refresh (an O(Δ) differential
    /// roll-forward of the session's private copy) needs only the epoch
    /// log; the engine lock joins in only for a first execution, a stale
    /// plan, or an invalidated copy, where a fresh O(#relations) COW
    /// clone or a re-prepare is required. The execution itself, including
    /// every integrity check, runs lock-free on the snapshot.
    ///
    /// Returns [`EngineError::Conflict`] (retryable,
    /// [`EngineError::is_retryable`]) when a transaction that committed
    /// after this execution's snapshot invalidates it; the authoritative
    /// state is untouched. A transaction that *aborts* on its snapshot
    /// (constraint violation) returns `Ok` with the aborted outcome once
    /// the applier confirms the verdict's reads were not invalidated.
    pub fn execute_prepared(&mut self, id: StatementId, params: &[Value]) -> Result<EngineOutcome> {
        let pending = self.execute_deferred(id, params)?;
        let (out, epoch) = pending.commit()?;
        self.last_commit = Some(epoch);
        Ok(out)
    }

    /// The snapshot-execution half of [`ConcurrentSession::execute_prepared`]
    /// without the commit: runs the statement on a fresh snapshot and
    /// returns a [`PendingCommit`] holding the tentative verdict, the
    /// captured differentials, and the conflict footprint. Call
    /// [`PendingCommit::commit`] to submit it to the applier; dropping it
    /// discards the execution (the snapshot epoch is released, nothing is
    /// published). Two deferred executions taken before either commits
    /// genuinely race — the deterministic way to exercise (and test)
    /// first-committer-wins.
    pub fn execute_deferred(&mut self, id: StatementId, params: &[Value]) -> Result<PendingCommit> {
        let slot = self
            .statements
            .get_mut(id.0)
            .ok_or(EngineError::UnknownStatement(id.0))?;

        // Snapshot. Fast path (the steady state): the session already has
        // a private copy and the plan is current, so the copy rolls
        // forward to the newest logged epoch under the *epochs* mutex
        // alone — commits draining under the engine mutex proceed
        // untouched, and the per-transaction engine-lock traffic drops to
        // the single acquisition the commit itself needs. Snapshotting
        // from the log rather than the live database is sound because the
        // log's `newest` epoch moves atomically with the push, and any
        // write that bypasses the log (out-of-band administration) bumps
        // the generation — checked here against the copy and again by the
        // applier against the commit request.
        let mut refreshed = false;
        let fast = {
            let mut epochs = self.shared.epochs.lock().expect("epoch mutex poisoned");
            let usable = self.cache.as_ref().is_some_and(|c| {
                c.generation == epochs.generation && c.epoch >= epochs.pruned_floor
            }) && slot.epoch() == self.shared.plan_epoch.load(Ordering::SeqCst);
            if usable {
                let mut c = self.cache.take().expect("cache checked above");
                let start = epochs.committed.partition_point(|cd| cd.epoch <= c.epoch);
                if epochs
                    .committed
                    .range(start..)
                    .try_for_each(|cd| cd.replay(&mut c.db))
                    .is_ok()
                {
                    c.epoch = epochs.newest;
                    let epoch = epochs.newest;
                    *epochs.active.entry(epoch).or_insert(0) += 1;
                    Some((c, epoch, slot.epoch()))
                } else {
                    // A failed replay leaves the copy torn; it stays
                    // dropped and the slow path re-clones.
                    None
                }
            } else {
                None
            }
        };
        // Slow path: first execution, stale plan, or an invalidated or
        // left-behind copy. Under the engine mutex, re-prepare if needed
        // and bring the copy current (O(Δ) roll-forward when possible, a
        // fresh COW clone otherwise).
        let (mut cache, snapshot_epoch, plan_epoch, time_checks) = match fast {
            Some((cache, epoch, plan)) => (
                cache,
                epoch,
                plan,
                self.shared.check_timing.load(Ordering::SeqCst),
            ),
            None => {
                let engine = self.shared.engine.lock().expect("engine mutex poisoned");
                if slot.is_stale(&engine) {
                    *slot = engine.prepare(slot.source())?;
                    refreshed = true;
                }
                let mut epochs = self.shared.epochs.lock().expect("epoch mutex poisoned");
                // Out-of-band writes (administration through `lock()`)
                // bypass the epoch log; the logical clock betrays them.
                // Bumping the generation sends every session copy back to
                // a fresh clone. (The administrator's guard already did
                // this on release; this catches writes made before the
                // layer was constructed around an existing clock value.)
                let auth_now = engine.database().logical_time();
                if self.shared.auth_time.swap(auth_now, Ordering::SeqCst) != auth_now {
                    epochs.generation += 1;
                }
                let epoch = epochs.newest;
                *epochs.active.entry(epoch).or_insert(0) += 1;
                let generation = epochs.generation;
                let cache = roll_forward(self.cache.take(), &engine, &epochs, epoch, generation);
                (cache, epoch, engine.plan_epoch(), engine.check_timing())
            }
        };
        let guard = EpochGuard {
            shared: self.shared.clone(),
            epoch: Some(snapshot_epoch),
        };
        if let Err(e) = slot.check_binding(params) {
            self.cache = Some(cache);
            return Err(e);
        }

        // Run on the snapshot — no lock held, checks scale with cores.
        let mut deltas = Vec::new();
        let mut timings = if time_checks {
            Some(CheckTimings {
                first: slot.checks_from(),
                ns: Vec::new(),
            })
        } else {
            None
        };
        let outcome = Executor.execute_plan_instrumented(
            &mut cache.db,
            slot.plan(),
            params,
            Some(&mut deltas),
            timings.as_mut(),
        );

        // Declare the footprint: relations the checks read, rows the
        // template declares (even when they netted to nothing), and the
        // tuples actually written.
        let mut footprint = TxFootprint::default();
        for rel in slot.plan().read_relations() {
            footprint.add_read(&rel);
        }
        if let Some(writes) = slot.plan().declared_writes(params) {
            for (rel, tuple) in writes {
                footprint.add_write(&rel, tuple);
            }
        }
        for d in &deltas {
            footprint.absorb_delta(d);
        }

        // Return the private copy to the clean snapshot state by undoing
        // this execution's own net effect (aborts already rolled back in
        // place and captured nothing). If the commit survives validation
        // it re-enters through the epoch log on the next roll-forward —
        // the copy never holds uncommitted state between transactions.
        let mut restored = true;
        for d in deltas.iter().rev() {
            if d.unapply(&mut cache.db).is_err() {
                restored = false;
                break;
            }
        }
        let generation = cache.generation;
        if restored {
            self.cache = Some(cache);
        }

        let request = CommitRequest {
            snapshot_epoch,
            plan_epoch,
            committed: outcome.is_committed(),
            generation,
            deltas,
            footprint,
        };
        Ok(PendingCommit {
            guard,
            outcome: Some(outcome),
            request: Some(request),
            modification: if refreshed {
                slot.modification().clone()
            } else {
                ModStats::default()
            },
            reused_plan: !refreshed,
            checks: slot.check_summary(),
            check_times_ns: timings.map(|t| t.ns).unwrap_or_default(),
        })
    }

    /// Epoch of this session's most recent successful
    /// [`ConcurrentSession::execute_prepared`] — the transaction's
    /// position in the global commit order (for aborted or read-only
    /// executions, the epoch current at validation).
    pub fn last_commit_epoch(&self) -> Option<u64> {
        self.last_commit
    }

    /// [`ConcurrentSession::execute_prepared`] with automatic retry on
    /// serialization conflicts: re-executes on a fresh snapshot up to
    /// `max_retries` times. Returns the outcome together with the number
    /// of retries spent; the last conflict propagates when the budget is
    /// exhausted.
    pub fn execute_with_retry(
        &mut self,
        id: StatementId,
        params: &[Value],
        max_retries: usize,
    ) -> Result<(EngineOutcome, usize)> {
        let mut retries = 0;
        loop {
            match self.execute_prepared(id, params) {
                Err(e) if e.is_retryable() && retries < max_retries => retries += 1,
                other => return other.map(|o| (o, retries)),
            }
        }
    }
}

/// Holds a registered snapshot epoch and releases it exactly once, even
/// when the pending execution is dropped without committing.
#[derive(Debug)]
struct EpochGuard {
    shared: Arc<Shared>,
    epoch: Option<u64>,
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        if let Some(e) = self.epoch.take() {
            release_epoch(&self.shared, e);
        }
    }
}

/// A snapshot execution that has run but not yet committed — the output
/// of [`ConcurrentSession::execute_deferred`]. Inspect the tentative
/// verdict with [`PendingCommit::outcome`], then [`PendingCommit::commit`]
/// to submit it to the applier (first-committer-wins validation, then
/// publication). Dropping it instead discards the execution with no
/// effect on the shared state.
#[derive(Debug)]
pub struct PendingCommit {
    guard: EpochGuard,
    outcome: Option<TxOutcome>,
    request: Option<CommitRequest>,
    modification: ModStats,
    reused_plan: bool,
    checks: CheckSummary,
    check_times_ns: Vec<u64>,
}

impl PendingCommit {
    /// The verdict the execution reached **on its snapshot**. A committed
    /// verdict is tentative until [`PendingCommit::commit`] survives
    /// validation; an aborted one is revalidated there too (the abort
    /// decision depends on what the checks read).
    pub fn outcome(&self) -> &TxOutcome {
        self.outcome.as_ref().expect("pending outcome present")
    }

    /// Submit to the commit applier. On success returns the finished
    /// [`EngineOutcome`] and the epoch the transaction occupies in the
    /// global commit order (for aborted or read-only executions, the
    /// epoch current at validation). Fails with the retryable
    /// [`EngineError::Conflict`] when a transaction committed after this
    /// execution's snapshot invalidates it.
    pub fn commit(mut self) -> Result<(EngineOutcome, u64)> {
        let request = self.request.take().expect("pending request present");
        let verdict = submit(&self.guard.shared, request);
        if let Some(e) = self.guard.epoch.take() {
            release_epoch(&self.guard.shared, e);
        }
        let epoch = verdict?;
        Ok((
            EngineOutcome {
                outcome: self.outcome.take().expect("pending outcome present"),
                modified: None,
                modification: std::mem::take(&mut self.modification),
                reused_plan: self.reused_plan,
                checks: self.checks,
                check_times_ns: std::mem::take(&mut self.check_times_ns),
            },
            epoch,
        ))
    }
}

/// Bring a session's private copy up to the `target` epoch by replaying
/// the committed differentials it is missing, or fall back to a fresh COW
/// clone when the copy is absent, was invalidated by out-of-band
/// administration (`generation` moved), fell behind the retention window,
/// or a replay fails. Runs under the engine mutex, so `target` is exactly
/// the newest epoch in the log.
fn roll_forward(
    cache: Option<SnapshotCache>,
    engine: &Engine,
    epochs: &EpochState,
    target: u64,
    generation: u64,
) -> SnapshotCache {
    if let Some(mut c) = cache {
        if c.generation == generation && c.epoch >= epochs.pruned_floor {
            let start = epochs.committed.partition_point(|cd| cd.epoch <= c.epoch);
            if epochs
                .committed
                .range(start..)
                .try_for_each(|cd| cd.replay(&mut c.db))
                .is_ok()
            {
                c.epoch = target;
                return c;
            }
        }
    }
    SnapshotCache {
        db: engine.database().clone(),
        epoch: target,
        generation,
    }
}

/// Deregister a snapshot epoch and prune differentials no active
/// snapshot can consult anymore.
fn release_epoch(shared: &Shared, epoch: u64) {
    let mut epochs = shared.epochs.lock().expect("epoch mutex poisoned");
    if let Some(n) = epochs.active.get_mut(&epoch) {
        *n -= 1;
        if *n == 0 {
            epochs.active.remove(&epoch);
        }
    }
    prune(&mut epochs);
}

/// Drop committed differentials at or below the oldest active snapshot
/// epoch — every future validation compares against epochs strictly above
/// some active (or yet-to-be-taken, hence even higher) snapshot — but
/// always retain the newest [`ConcurrentEngine::ROLLFORWARD_RETENTION`]
/// records so session copies can roll forward instead of re-cloning.
fn prune(epochs: &mut EpochState) {
    let floor = epochs.active.keys().next().copied().unwrap_or(u64::MAX);
    while epochs.committed.len() > ConcurrentEngine::ROLLFORWARD_RETENTION
        && epochs.committed.front().is_some_and(|c| c.epoch <= floor)
    {
        let evicted = epochs.committed.pop_front().expect("front exists");
        epochs.pruned_floor = evicted.epoch;
    }
}

/// Queue a commit request and make sure it gets processed: push the slot,
/// take the engine lock, drain everything queued (flat combining — under
/// contention, one acquisition lands many commits). By the time this
/// committer *holds* the lock its own slot has been processed, either by
/// an earlier leader or by its own drain.
fn submit(shared: &Shared, request: CommitRequest) -> Result<u64> {
    let slot = Arc::new(CommitSlot {
        request: Mutex::new(Some(request)),
        result: Mutex::new(None),
    });
    shared
        .queue
        .lock()
        .expect("queue mutex poisoned")
        .push_back(slot.clone());

    let mut engine = shared.engine.lock().expect("engine mutex poisoned");
    loop {
        let next = shared
            .queue
            .lock()
            .expect("queue mutex poisoned")
            .pop_front();
        let Some(s) = next else { break };
        let req = s
            .request
            .lock()
            .expect("slot mutex poisoned")
            .take()
            .expect("queued slot carries a request");
        let verdict = apply_one(&mut engine, shared, req);
        *s.result.lock().expect("slot mutex poisoned") = Some(verdict);
    }
    drop(engine);

    let verdict = slot
        .result
        .lock()
        .expect("slot mutex poisoned")
        .take()
        .expect("slot processed before engine lock release");
    verdict
}

/// Validate and (when it survives) publish one commit request. Runs under
/// the engine mutex.
fn apply_one(engine: &mut Engine, shared: &Shared, req: CommitRequest) -> Result<u64> {
    // The catalog fence: a DDL step (rule defined or removed, constraint
    // declared) between snapshot and commit means every check this
    // execution ran enforced the wrong rule set. The verdict — commit or
    // abort — is void; the retry re-prepares against the new catalog.
    if engine.plan_epoch() != req.plan_epoch {
        return Err(EngineError::Conflict {
            relation: "<catalog>".to_owned(),
            committed_epoch: shared.commit_epoch.load(Ordering::SeqCst),
            read: true,
        });
    }
    // First-committer-wins: any differential committed after this
    // request's snapshot that intersects its footprint wins; the request
    // fails with a retryable conflict and the state stays untouched.
    {
        let epochs = shared.epochs.lock().expect("epoch mutex poisoned");
        // The out-of-band fence: a moved generation means data was
        // written past the epoch log while this execution was in flight —
        // the log cannot prove the snapshot verdict still stands, so the
        // request retries on a fresh clone.
        if epochs.generation != req.generation {
            return Err(EngineError::Conflict {
                relation: "<out-of-band>".to_owned(),
                committed_epoch: epochs.newest,
                read: true,
            });
        }
        for cd in epochs.committed.iter().rev() {
            if cd.epoch <= req.snapshot_epoch {
                break; // ascending by epoch: the rest predate the snapshot
            }
            if let Some(c) = req.footprint.conflicts_with(cd) {
                return Err(EngineError::Conflict {
                    relation: c.relation,
                    committed_epoch: c.committed_epoch,
                    read: c.read,
                });
            }
        }
    }
    let current = shared.commit_epoch.load(Ordering::SeqCst);
    if !req.committed {
        // The abort verdict stands: its reads were just revalidated. No
        // state change, no epoch.
        return Ok(current);
    }
    if req.deltas.iter().all(RelationDelta::is_empty) {
        // Read-only (or fully netted-out) commit: nothing to publish.
        return Ok(current);
    }

    // Publish: replay the net differentials onto the authoritative state,
    // then log them. Failures unwind completely — either everything
    // (state, WAL) reflects this commit or nothing does. Whatever the
    // outcome, re-stamp the logical clock this layer has accounted for,
    // so the mutation is not mistaken for out-of-band administration.
    let published = publish(engine, &req.deltas);
    shared
        .auth_time
        .store(engine.database().logical_time(), Ordering::SeqCst);
    published?;

    let epoch = shared.commit_epoch.fetch_add(1, Ordering::SeqCst) + 1;
    let mut epochs = shared.epochs.lock().expect("epoch mutex poisoned");
    epochs
        .committed
        .push_back(CommittedDelta::from_deltas(epoch, &req.deltas));
    epochs.newest = epoch;
    prune(&mut epochs);
    Ok(epoch)
}

/// The state-mutating half of publication: apply the differentials, then
/// log them; on any failure the state is rolled back before the error
/// propagates.
fn publish(engine: &mut Engine, deltas: &[RelationDelta]) -> Result<()> {
    for (i, d) in deltas.iter().enumerate() {
        if let Err(e) = d.apply(engine.database_mut()) {
            for u in deltas[..i].iter().rev() {
                let _ = u.unapply(engine.database_mut());
            }
            return Err(e.into());
        }
    }
    if engine.wal_active() {
        // log_commit unapplies the deltas it was handed on failure; the
        // replayed state is already rolled back when the error surfaces.
        engine.log_commit(deltas.to_vec())?;
    }
    Ok(())
}
