//! The rule catalog: rules, compiled integrity programs, and validation.

use std::fmt;
use std::sync::Arc;

use tm_analyze::{check_program, AnalysisReport, CatalogAnalysis};
use tm_calculus::{analyze, ConstraintInfo};
use tm_relational::DatabaseSchema;
use tm_rules::{IntegrityRule, RuleAction, TriggerIndex, TriggeringGraph, ValidationReport};
use tm_translate::{condition_shape, ConditionShape};

use crate::error::{EngineError, Result};
use crate::programs::{get_int_p, IntegrityProgram};

/// The integrity catalog of a database: the declared rules, their
/// compiled forms (Definition 6.3's set `K`), the analysed condition of
/// each rule — cached once at definition time so ground-truth checks do
/// not re-run the parse-level analysis on every call — plus the two
/// specialization artefacts: the per-rule [`ConditionShape`] (for
/// weakest-precondition reduction at prepare time) and an inverted
/// [`TriggerIndex`] (so rule selection costs O(affected), not O(catalog)).
///
/// The catalog also maintains its own static analysis
/// ([`CatalogAnalysis`]): per-rule diagnostics, the semantically
/// refined triggering graph, and the termination certificate — all kept
/// incrementally as rules come and go, so the modification engine can
/// consult pruned edges and the certificate at zero per-transaction
/// cost.
#[derive(Debug, Clone)]
pub struct Catalog {
    schema: Arc<DatabaseSchema>,
    rules: Vec<IntegrityRule>,
    programs: Vec<IntegrityProgram>,
    infos: Vec<ConstraintInfo>,
    shapes: Vec<ConditionShape>,
    index: TriggerIndex,
    analysis: CatalogAnalysis,
    differential: bool,
}

impl Catalog {
    /// Create an empty catalog; `differential` selects whether compiled
    /// programs include per-trigger delta specializations.
    pub fn new(schema: Arc<DatabaseSchema>, differential: bool) -> Catalog {
        Catalog {
            analysis: CatalogAnalysis::new(schema.clone()),
            schema,
            rules: Vec::new(),
            programs: Vec::new(),
            infos: Vec::new(),
            shapes: Vec::new(),
            index: TriggerIndex::new(),
            differential,
        }
    }

    /// The database schema the catalog is bound to.
    pub fn schema(&self) -> &Arc<DatabaseSchema> {
        &self.schema
    }

    /// The declared rules.
    pub fn rules(&self) -> &[IntegrityRule] {
        &self.rules
    }

    /// The compiled integrity programs (in rule declaration order).
    pub fn programs(&self) -> &[IntegrityProgram] {
        &self.programs
    }

    /// The condition shape of each rule (in rule declaration order):
    /// `Domain`/`Referential` for specializable aborting checks, `Other`
    /// for everything else (including compensating rules, whose response
    /// actions always run generically).
    pub fn shapes(&self) -> &[ConditionShape] {
        &self.shapes
    }

    /// The inverted trigger index over the rule set: positions match
    /// [`Catalog::rules`]/[`Catalog::programs`]. Maintained incrementally
    /// on [`Catalog::add_rule`], rebuilt on [`Catalog::remove_rule`].
    pub fn trigger_index(&self) -> &TriggerIndex {
        &self.index
    }

    /// Look up a rule by name.
    pub fn rule(&self, name: &str) -> Option<&IntegrityRule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// The cached analysed condition of a rule, by name.
    pub fn constraint_info(&self, name: &str) -> Option<&ConstraintInfo> {
        self.rules
            .iter()
            .position(|r| r.name == name)
            .map(|i| &self.infos[i])
    }

    /// Iterate over the rules together with their cached analysed
    /// conditions (in declaration order).
    pub fn rules_with_infos(&self) -> impl Iterator<Item = (&IntegrityRule, &ConstraintInfo)> {
        self.rules.iter().zip(self.infos.iter())
    }

    /// Add a rule: rejects duplicates, compiles it eagerly (`GetIntP`,
    /// Algorithm 6.1) and analyses its condition once, so translation and
    /// analysis errors surface at definition time and later ground-truth
    /// checks reuse the cached [`ConstraintInfo`].
    pub fn add_rule(&mut self, rule: IntegrityRule) -> Result<()> {
        if self.rule(&rule.name).is_some() {
            return Err(EngineError::DuplicateRule(rule.name));
        }
        // A compensating action is free-form designer code: typecheck it
        // so arity and domain defects fail here, not at first firing.
        if let RuleAction::Compensate(program) = rule.action() {
            check_program(program, &self.schema).map_err(|detail| EngineError::InvalidAction {
                rule: rule.name.clone(),
                detail,
            })?;
        }
        let program = get_int_p(&rule, &self.schema, self.differential)?;
        // The rule parsed; what can fail here is the *evaluation-side*
        // analysis of its condition — not a parse error.
        let info = analyze(rule.condition(), &self.schema)
            .map_err(|e| EngineError::Eval(e.to_string()))?;
        // Only aborting checks are specialization candidates; a
        // compensating action must run whenever triggered.
        let shape = if rule.action().is_abort() {
            condition_shape(&info.formula, &self.schema)
        } else {
            ConditionShape::Other
        };
        // All fallible steps are done: fold the rule into the analysis
        // and the parallel vectors together.
        self.analysis.add_rule(&rule, &info);
        self.index.add(rule.triggers());
        self.rules.push(rule);
        self.programs.push(program);
        self.infos.push(info);
        self.shapes.push(shape);
        Ok(())
    }

    /// Remove a rule by name; returns whether it existed.
    pub fn remove_rule(&mut self, name: &str) -> bool {
        match self.rules.iter().position(|r| r.name == name) {
            Some(i) => {
                self.rules.remove(i);
                self.programs.remove(i);
                self.infos.remove(i);
                self.shapes.remove(i);
                self.analysis.remove_rule(i);
                // Positions shifted: rebuild the inverted index.
                self.index = TriggerIndex::build(self.rules.iter().map(|r| r.triggers()));
                true
            }
            None => false,
        }
    }

    /// The incrementally maintained static analysis of the rule set:
    /// diagnostics, refined triggering graph, termination certificate.
    pub fn analysis(&self) -> &CatalogAnalysis {
        &self.analysis
    }

    /// Assemble the full structured analysis report for the current
    /// rule set.
    pub fn analysis_report(&self) -> AnalysisReport {
        self.analysis.report()
    }

    /// Validate the triggering behaviour of the rule set (Section 6.1).
    pub fn validate(&self) -> ValidationReport {
        ValidationReport::validate(&self.rules)
    }

    /// The triggering graph of the rule set (Definition 6.1).
    pub fn triggering_graph(&self) -> TriggeringGraph {
        TriggeringGraph::build(&self.rules)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the catalog has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "catalog: {} rule(s)", self.rules.len())?;
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_relational::schema::beer_schema;
    use tm_rules::parse_rule;

    fn catalog() -> Catalog {
        Catalog::new(beer_schema().into_shared(), false)
    }

    fn r1() -> IntegrityRule {
        parse_rule(
            "IF NOT forall x (x in beer implies x.alcohol >= 0) THEN abort",
            "r1",
        )
        .unwrap()
    }

    #[test]
    fn add_lookup_remove() {
        let mut c = catalog();
        c.add_rule(r1()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.rule("r1").is_some());
        assert_eq!(c.programs().len(), 1);
        assert!(c.remove_rule("r1"));
        assert!(!c.remove_rule("r1"));
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = catalog();
        c.add_rule(r1()).unwrap();
        assert!(matches!(
            c.add_rule(r1()),
            Err(EngineError::DuplicateRule(_))
        ));
    }

    #[test]
    fn translation_errors_surface_at_definition() {
        let mut c = catalog();
        let bad = parse_rule(
            "WHEN INS(nope) IF NOT forall x (x in nope implies x.1 > 0) THEN abort",
            "bad",
        )
        .unwrap();
        assert!(matches!(c.add_rule(bad), Err(EngineError::Translate(_))));
        assert!(c.is_empty(), "failed rules must not be half-added");
    }

    #[test]
    fn validation_reports_cycles() {
        let mut c = catalog();
        c.add_rule(
            parse_rule(
                "WHEN INS(beer) IF NOT 1 = 1 THEN insert(beer, beer@ins)",
                "self",
            )
            .unwrap(),
        )
        .unwrap();
        let report = c.validate();
        assert!(report.has_cycles());
        assert!(!c.triggering_graph().is_acyclic());
    }
}
