//! The paper's running example, end to end: rules R1 (aborting) and R2
//! (compensating) from Example 4.2, the transaction of Example 5.1, and
//! the modified transaction the subsystem produces.
//!
//! ```text
//! cargo run --example beer_database
//! ```

use tm_algebra::builder::TransactionBuilder;
use tm_relational::schema::beer_schema;
use tm_relational::{Tuple, Value};
use txmod::Engine;

fn main() {
    let mut engine = Engine::new(beer_schema());

    // R1 (Example 4.2): aborting domain rule.
    engine
        .add_rule_text(
            "RULE r1 WHEN INS(beer) \
             IF NOT forall x (x in beer implies x.alcohol >= 0) \
             THEN abort",
            "r1",
        )
        .expect("r1 parses");

    // R2 (Example 4.2): compensating referential rule — missing breweries
    // are *inserted* (with null city/country) instead of aborting.
    engine
        .add_rule_text(
            "RULE r2 WHEN INS(beer), DEL(brewery) \
             IF NOT forall x (x in beer implies \
                      exists y (y in brewery and x.brewery = y.name)) \
             THEN temp := minus(project[#2](beer), project[#0](brewery)); \
                  insert(brewery, project[#0, null, null](temp))",
            "r2",
        )
        .expect("r2 parses");

    println!("{}", engine.catalog());

    // Validate triggering behaviour (Section 6.1).
    let report = engine.validate();
    println!("{report}\n");

    // Example 5.1's transaction: insert a new beer from an unknown brewery.
    let tx = TransactionBuilder::new()
        .insert_tuple(
            "beer",
            Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
        )
        .build();

    let (modified, trace) = engine.modify_only(&tx).expect("modifiable");
    println!("user transaction:\n{tx}");
    println!("modified transaction:\n{modified}");
    println!(
        "modification: {} round(s), rules fired: {:?}\n",
        trace.rounds, trace.rules_fired
    );

    // Execute: R1's alarm passes (alcohol = 6 ≥ 0); R2's compensation
    // inserts the missing brewery, so the transaction commits.
    let outcome = engine.execute(&tx).expect("executes");
    println!("outcome: {outcome}");
    assert!(outcome.committed());

    let breweries = engine.relation("brewery").expect("brewery exists");
    println!("\nbreweries after commit:\n{breweries}");
    assert!(breweries.contains(&Tuple::from_values(vec![
        Value::str("guineken"),
        Value::Null,
        Value::Null,
    ])));

    // And a violating insert still aborts via R1.
    let bad = TransactionBuilder::new()
        .insert_tuple(
            "beer",
            Tuple::of(("overproof", "rum?", "guineken", -1.0_f64)),
        )
        .build();
    let outcome = engine.execute(&bad).expect("executes");
    println!("violating transaction: {outcome}");
    assert!(!outcome.committed());
}
