//! The §7 experiment, interactively: fragmented relations on a simulated
//! multi-node machine, and the paper's referential + domain checks at
//! several node counts.
//!
//! ```text
//! cargo run --release --example parallel_fragments
//! ```

use std::time::Instant;

use tm_algebra::{CmpOp, ScalarExpr};
use tm_parallel::ParallelDb;
use tm_relational::{RelationSchema, Tuple, ValueType};

fn main() {
    const PARENTS: i64 = 5_000;
    const CHILDREN: i64 = 50_000;
    const INSERTS: i64 = 5_000;

    println!(
        "building §7 test database: {PARENTS} key tuples, {CHILDREN} FK tuples, \
         {INSERTS} inserted tuples\n"
    );

    for nodes in [1usize, 2, 4, 8] {
        let mut db = ParallelDb::new(nodes);
        db.create_relation(
            RelationSchema::of("parent", &[("key", ValueType::Int), ("p", ValueType::Int)]),
            0,
        );
        db.create_relation(
            RelationSchema::of(
                "child",
                &[
                    ("id", ValueType::Int),
                    ("fk", ValueType::Int),
                    ("amount", ValueType::Int),
                ],
            ),
            1, // fragmented on the FK column → co-partitioned with parent
        );
        db.load("parent", (0..PARENTS).map(|k| Tuple::of((k, 0))))
            .expect("load parents");
        db.load(
            "child",
            (0..CHILDREN + INSERTS).map(|i| Tuple::of((i, i % PARENTS, i % 100))),
        )
        .expect("load children");

        let t0 = Instant::now();
        let r = db.check_referential("child", 1, "parent", 0);
        let t_ref = t0.elapsed();
        assert!(r.satisfied());

        let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::int(0));
        let t0 = Instant::now();
        let d = db.check_domain("child", &pred);
        let t_dom = t0.elapsed();
        assert!(d.satisfied());

        println!(
            "nodes={nodes}: referential check {t_ref:?} (shuffled {} tuples), \
             domain check {t_dom:?}",
            r.tuples_shuffled
        );
    }

    // Now inject violations and watch the checks find them.
    let mut db = ParallelDb::new(8);
    db.create_relation(
        RelationSchema::of("parent", &[("key", ValueType::Int), ("p", ValueType::Int)]),
        0,
    );
    db.create_relation(
        RelationSchema::of(
            "child",
            &[
                ("id", ValueType::Int),
                ("fk", ValueType::Int),
                ("amount", ValueType::Int),
            ],
        ),
        1,
    );
    db.load("parent", (0..PARENTS).map(|k| Tuple::of((k, 0))))
        .expect("load parents");
    db.load(
        "child",
        (0..CHILDREN).map(|i| Tuple::of((i, i % PARENTS, i % 100))),
    )
    .expect("load children");

    // A delta batch with 3 orphans and 2 negative amounts.
    let delta: Vec<Tuple> = (0..INSERTS)
        .map(|i| {
            let fk = if i < 3 {
                PARENTS + 100 + i
            } else {
                i % PARENTS
            };
            let amount = if (3..5).contains(&i) { -1 } else { 10 };
            Tuple::of((CHILDREN + i, fk, amount))
        })
        .collect();

    let r = db.check_referential_delta(&delta, 1, "parent", 0);
    let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(2), ScalarExpr::int(0));
    let d = db.check_domain_delta("child", &delta, &pred);
    println!(
        "\ndelta checks over {} inserted tuples: {} referential violations, {} domain violations",
        delta.len(),
        r.violations,
        d.violations
    );
    assert_eq!(r.violations, 3);
    assert_eq!(d.violations, 2);
}
