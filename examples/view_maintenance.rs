//! Materialized view maintenance by transaction modification — the second
//! application the paper's conclusions name ("transaction modification can
//! be used for purposes other than integrity control as well, like
//! materialized view maintenance").
//!
//! ```text
//! cargo run --example view_maintenance
//! ```

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{CmpOp, RelExpr, ScalarExpr};
use tm_relational::{DatabaseSchema, RelationSchema, Tuple, ValueType};
use txmod::{Engine, ViewDef};

fn main() {
    // orders(id, customer, amount); views: big_orders (σ) and customers (π).
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "orders",
            &[
                ("id", ValueType::Int),
                ("customer", ValueType::Str),
                ("amount", ValueType::Int),
            ],
        ),
        RelationSchema::of(
            "big_orders",
            &[
                ("id", ValueType::Int),
                ("customer", ValueType::Str),
                ("amount", ValueType::Int),
            ],
        ),
        RelationSchema::of("customers", &[("customer", ValueType::Str)]),
    ])
    .expect("valid schema");

    let mut engine = Engine::new(schema);

    // Selection view: maintained incrementally from the differentials.
    engine
        .define_view(ViewDef::new(
            "big_orders",
            RelExpr::relation("orders").select(ScalarExpr::cmp(
                CmpOp::Ge,
                ScalarExpr::col(2),
                ScalarExpr::int(1000),
            )),
        ))
        .expect("view valid");

    // Projection view: maintained by full refresh.
    engine
        .define_view(ViewDef::new(
            "customers",
            RelExpr::relation("orders").project_cols(&[1]),
        ))
        .expect("view valid");

    // A constraint *on the view*: at most 2 big orders outstanding. The
    // enforcement chain runs INS(orders) → view refresh → INS(big_orders)
    // → constraint check, all inside one modified transaction.
    engine
        .define_constraint("big_order_cap", "CNT(big_orders) <= 2")
        .expect("valid");

    let tx = TransactionBuilder::new()
        .insert_tuples(
            "orders",
            vec![
                Tuple::of((1, "ada", 50)),
                Tuple::of((2, "ada", 5000)),
                Tuple::of((3, "brian", 1200)),
            ],
        )
        .build();
    let outcome = engine.execute(&tx).expect("runs");
    println!("initial orders: {outcome}");
    assert!(outcome.committed());

    println!(
        "\nbig_orders view:\n{}",
        engine.relation("big_orders").unwrap()
    );
    println!("customers view:\n{}", engine.relation("customers").unwrap());
    assert_eq!(engine.relation("big_orders").unwrap().len(), 2);
    assert_eq!(engine.relation("customers").unwrap().len(), 2);

    // Deleting an order updates the views in the same transaction.
    let tx = TransactionBuilder::new()
        .delete_tuple("orders", Tuple::of((2, "ada", 5000)))
        .build();
    assert!(engine.execute(&tx).expect("runs").committed());
    println!(
        "after deleting order 2: big_orders={}, customers={}",
        engine.relation("big_orders").unwrap().len(),
        engine.relation("customers").unwrap().len()
    );
    assert_eq!(engine.relation("big_orders").unwrap().len(), 1);

    // A third big order would break the cap — the whole transaction
    // (including the view refresh) rolls back atomically.
    let tx = TransactionBuilder::new()
        .insert_tuples(
            "orders",
            vec![Tuple::of((4, "carol", 9000)), Tuple::of((5, "dave", 8000))],
        )
        .build();
    let outcome = engine.execute(&tx).expect("runs");
    println!("cap-breaking insert: {outcome}");
    assert!(!outcome.committed());
    assert_eq!(engine.relation("big_orders").unwrap().len(), 1);
    assert_eq!(engine.relation("orders").unwrap().len(), 2);
    println!("views stayed consistent after rollback.");
}
