//! A banking scenario exercising aborting rules, compensating rules,
//! transition constraints, and aggregates together.
//!
//! Schema: `account(id, owner, balance)` and `audit(id, delta)`.
//! Policies:
//!   * balances may not go negative (aborting domain rule),
//!   * the bank's total liability is capped (aborting aggregate rule),
//!   * accounts may never disappear (transition constraint on
//!     `account@pre`),
//!   * every balance update is logged to `audit` (compensating rule using
//!     the differential relations — transaction modification as a
//!     *trigger* mechanism).
//!
//! ```text
//! cargo run --example bank_compensation
//! ```

use tm_algebra::builder::TransactionBuilder;
use tm_algebra::{ArithOp, CmpOp, ScalarExpr, UpdateAssignment};
use tm_relational::{DatabaseSchema, RelationSchema, Tuple, ValueType};
use txmod::Engine;

fn schema() -> DatabaseSchema {
    DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "account",
            &[
                ("id", ValueType::Int),
                ("owner", ValueType::Str),
                ("balance", ValueType::Int),
            ],
        ),
        RelationSchema::of(
            "audit",
            &[("id", ValueType::Int), ("balance", ValueType::Int)],
        ),
    ])
    .expect("valid schema")
}

fn main() {
    let mut engine = Engine::new(schema());

    engine
        .define_constraint(
            "no_overdraft",
            "forall x (x in account implies x.balance >= 0)",
        )
        .expect("valid");
    engine
        .define_constraint("liability_cap", "SUM(account, balance) <= 10000")
        .expect("valid");
    engine
        .define_constraint(
            "accounts_persist",
            "forall x (x in account@pre implies exists y (y in account and x.id = y.id))",
        )
        .expect("valid");
    // Audit log: whenever accounts change, record the post-state of every
    // touched account. The action reads the differential relations and is
    // declared non-triggering so it cannot cascade.
    engine
        .add_rule_text(
            "RULE audit_log WHEN INS(account), DEL(account) \
             IF NOT 1 = 1 \
             THEN insert(audit, project[#0, #2](account@ins)) NON-TRIGGERING",
            "audit_log",
        )
        .expect("valid");

    // Open two accounts.
    let open = TransactionBuilder::new()
        .insert_tuples(
            "account",
            vec![Tuple::of((1, "ada", 1000)), Tuple::of((2, "brian", 2000))],
        )
        .build();
    assert!(engine.execute(&open).expect("runs").committed());
    println!(
        "opened accounts; audit entries: {}",
        engine.relation("audit").unwrap().len()
    );

    // Transfer 500 from brian to ada via update statements.
    let transfer = TransactionBuilder::new()
        .update(
            "account",
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(2)),
            vec![UpdateAssignment::new(
                2,
                ScalarExpr::arith(ArithOp::Sub, ScalarExpr::col(2), ScalarExpr::int(500)),
            )],
        )
        .update(
            "account",
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(1)),
            vec![UpdateAssignment::new(
                2,
                ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(2), ScalarExpr::int(500)),
            )],
        )
        .build();
    let outcome = engine.execute(&transfer).expect("runs");
    println!("transfer: {outcome}");
    assert!(outcome.committed());

    // Overdraft attempt: brian only has 1500 now.
    let overdraft = TransactionBuilder::new()
        .update(
            "account",
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(2)),
            vec![UpdateAssignment::new(
                2,
                ScalarExpr::arith(ArithOp::Sub, ScalarExpr::col(2), ScalarExpr::int(9999)),
            )],
        )
        .build();
    let outcome = engine.execute(&overdraft).expect("runs");
    println!("overdraft attempt: {outcome}");
    assert!(!outcome.committed());

    // Liability cap: depositing 8000 would push the total over 10 000.
    let too_rich = TransactionBuilder::new()
        .insert_tuple("account", Tuple::of((3, "croesus", 8000)))
        .build();
    let outcome = engine.execute(&too_rich).expect("runs");
    println!("liability breach: {outcome}");
    assert!(!outcome.committed());

    // Account deletion violates the transition constraint.
    let close = TransactionBuilder::new()
        .delete_where(
            "account",
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::int(1)),
        )
        .build();
    let outcome = engine.execute(&close).expect("runs");
    println!("account deletion: {outcome}");
    assert!(!outcome.committed());

    let audit = engine.relation("audit").expect("audit exists");
    println!("\naudit log:\n{audit}");
    assert!(engine.check_state().expect("checkable").is_empty());
    println!("final state consistent.");
}
