//! Quickstart: declare constraints, submit transactions, observe
//! transaction modification at work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tm_algebra::builder::TransactionBuilder;
use tm_relational::schema::beer_schema;
use tm_relational::Tuple;
use txmod::Engine;

fn main() {
    // 1. An engine over the paper's beer/brewery schema.
    let mut engine = Engine::new(beer_schema());

    // 2. Declarative constraints in CL (Section 4.1). Trigger sets are
    //    generated automatically (GenTrigC, Algorithm 5.7); the default
    //    violation response is abort.
    engine
        .define_constraint(
            "alcohol_domain",
            "forall x (x in beer implies x.alcohol >= 0)",
        )
        .expect("valid constraint");
    engine
        .define_constraint(
            "brewery_fk",
            "forall x (x in beer implies exists y (y in brewery and x.brewery = y.name))",
        )
        .expect("valid constraint");

    // 3. Seed data (bulk load bypasses enforcement, like any initial load).
    engine
        .load("brewery", vec![Tuple::of(("guineken", "dublin", "ie"))])
        .expect("load succeeds");

    // 4. A correct transaction commits.
    let good = TransactionBuilder::new()
        .insert_tuple(
            "beer",
            Tuple::of(("exportgold", "stout", "guineken", 6.0_f64)),
        )
        .build();
    let outcome = engine.execute(&good).expect("engine accepts transaction");
    println!("good transaction: {outcome}");
    assert!(outcome.committed());

    // 5. A violating transaction is modified so that it aborts — the
    //    database is untouched.
    let bad = TransactionBuilder::new()
        .insert_tuple("beer", Tuple::of(("toxic", "stout", "guineken", -2.0_f64)))
        .build();
    let outcome = engine.execute(&bad).expect("engine accepts transaction");
    println!("bad transaction:  {outcome}");
    assert!(!outcome.committed());

    // 6. Inspect what the subsystem actually executed (present whenever
    //    enforcement is on; `None` only in `Off` mode, which runs the
    //    transaction verbatim without keeping a copy).
    let rewritten = outcome
        .modified_transaction()
        .expect("enforcement is on, so ModT produced a transaction");
    println!("\nthe violating transaction was rewritten to:\n{rewritten}");

    // 7. The database holds exactly the one good beer.
    let beers = engine.relation("beer").expect("beer exists");
    println!("beers in database: {}", beers.len());
    assert_eq!(beers.len(), 1);

    // 8. Ground truth agrees: no constraint is violated.
    assert!(engine.check_state().expect("checkable").is_empty());
    println!("all constraints hold.");
}
