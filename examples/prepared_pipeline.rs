//! Quickstart for the prepared-transaction surface: run `ModT` once,
//! bind and execute many times (see `docs/api.md`).
//!
//! ```bash
//! cargo run --release --example prepared_pipeline
//! ```

use tm_algebra::builder::TransactionBuilder;
use tm_relational::{DatabaseSchema, RelationSchema, Value, ValueType};
use txmod::{EnforcementMode, Engine, EngineConfig};

fn main() -> txmod::Result<()> {
    // account(id, balance) guarded by a non-negative balance constraint.
    let schema = DatabaseSchema::from_relations(vec![RelationSchema::of(
        "account",
        &[("id", ValueType::Int), ("balance", ValueType::Int)],
    )])?;
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            mode: EnforcementMode::Static,
            ..EngineConfig::default()
        },
    );
    engine.define_constraint(
        "balance_non_negative",
        "forall x (x in account implies x.balance >= 0)",
    )?;

    // ── prepare: ModT runs ONCE over the parameterized template ─────────
    let template = TransactionBuilder::new()
        .insert_params("account", 2) // insert(account, row(?0, ?1))
        .build();
    let mut session = engine.session();
    let stmt = session.prepare(&template)?;
    {
        let prepared = session.prepared(stmt)?;
        println!(
            "prepared: {} param slot(s), {} rule(s) fired at prepare time",
            prepared.param_count(),
            prepared.modification().rules_fired.len()
        );
        println!("template as executed:\n{}", prepared.transaction());
    }

    // ── bind + execute: the hot loop ────────────────────────────────────
    for id in 0..5i64 {
        let out = session.execute_prepared(stmt, &[Value::Int(id), Value::Int(100 * id)])?;
        assert!(out.committed() && out.reused_plan);
    }
    // A violating binding aborts — same verdict the ad-hoc path gives.
    let out = session.execute_prepared(stmt, &[Value::Int(99), Value::Int(-1)])?;
    println!("binding (99, -1): {out}");
    assert!(!out.committed());

    // A mistyped binding never reaches the executor.
    let err = session
        .prepared(stmt)?
        .bind(&[Value::str("not an id"), Value::Int(0)])
        .unwrap_err();
    println!("binding ('not an id', 0): {err}");

    // ── snapshot reads: O(#relations), never blocking the writer ────────
    let snapshot = session.snapshot();
    let out = session.execute_prepared(stmt, &[Value::Int(6), Value::Int(600)])?;
    assert!(out.committed());
    println!(
        "snapshot still sees {} accounts; live state has {}",
        snapshot.relation("account").unwrap().len(),
        session.engine().relation("account")?.len()
    );

    // ── plan invalidation: a rule added after prepare is enforced ───────
    session.define_constraint(
        "balance_capped",
        "forall x (x in account implies x.balance <= 1000)",
    )?;
    let out = session.execute_prepared(stmt, &[Value::Int(7), Value::Int(5000)])?;
    println!("after new rule, binding (7, 5000): {out}");
    assert!(!out.committed(), "stale plan was re-modified");
    assert!(!out.reused_plan, "that call re-ran ModT");
    let out = session.execute_prepared(stmt, &[Value::Int(7), Value::Int(500)])?;
    assert!(out.committed() && out.reused_plan, "and the refresh sticks");

    drop(session);
    println!("final account count: {}", engine.relation("account")?.len());
    Ok(())
}
