//! The service front-end, end to end: start the multi-tenant server
//! in-process on an ephemeral port, build the bank-compensation catalog
//! *through a client connection* (constraints and the compensating audit
//! rule arrive over the wire, not by touching the engine), drive
//! prepared and ad-hoc traffic at it, and print the metrics dump.
//!
//! Run with `cargo run --example service_demo`.

use std::sync::Arc;

use tm_relational::{DatabaseSchema, RelationSchema, Value, ValueType};
use tm_server::{serve, Client, ServerConfig, TenantRegistry, TenantSpec};
use txmod::{EnforcementMode, Engine, EngineConfig};

fn main() {
    // The tenant starts with just a schema; the integrity catalog is the
    // client's to define.
    let schema = DatabaseSchema::from_relations(vec![
        RelationSchema::of(
            "account",
            &[
                ("id", ValueType::Int),
                ("owner", ValueType::Str),
                ("balance", ValueType::Int),
            ],
        ),
        RelationSchema::of(
            "audit",
            &[("id", ValueType::Int), ("balance", ValueType::Int)],
        ),
    ])
    .expect("schema is valid");
    let engine = Engine::with_config(
        schema,
        EngineConfig {
            mode: EnforcementMode::Static,
            ..EngineConfig::default()
        },
    );

    let registry = Arc::new(TenantRegistry::new());
    registry.add("bank", engine, TenantSpec::default());
    let handle = serve(registry, "127.0.0.1:0", ServerConfig::default()).expect("serve");
    println!("serving on {}", handle.addr());

    let mut client = Client::connect(handle.addr(), "bank").expect("connect");

    // The bank-compensation catalog, defined over the wire.
    client
        .define_constraint(
            "no_overdraft",
            "forall x (x in account implies x.balance >= 0)",
        )
        .expect("no_overdraft");
    client
        .define_constraint("liability_cap", "SUM(account, balance) <= 10000")
        .expect("liability_cap");
    client
        .define_rule(
            "audit_log",
            "RULE audit_log WHEN INS(account), DEL(account) \
             IF NOT 1 = 1 \
             THEN insert(audit, project[#0, #2](account@ins)) NON-TRIGGERING",
        )
        .expect("audit_log");

    // Prepared deposits: modified + specialized once, then bound per call.
    let deposit = client
        .prepare("insert(account, row(?0, ?1, ?2))")
        .expect("prepare");
    for (id, owner, balance) in [(1, "ada", 1000), (2, "brian", 2000)] {
        let report = client
            .execute(
                deposit,
                vec![Value::Int(id), Value::str(owner), Value::Int(balance)],
            )
            .expect("execute");
        println!(
            "open account {id}: {}",
            if report.committed {
                "committed"
            } else {
                "aborted"
            }
        );
    }

    // An overdraft: the modified transaction detects the violation and
    // aborts — typed verdict on the wire, engine state untouched.
    let overdraft = client
        .execute(
            deposit,
            vec![Value::Int(3), Value::str("eve"), Value::Int(-50)],
        )
        .expect("execute");
    println!(
        "overdraft attempt: aborted ({})",
        overdraft.abort.as_deref().unwrap_or("?")
    );

    // Busting the liability cap aborts too — an aggregate constraint.
    let bust = client
        .execute(
            deposit,
            vec![Value::Int(4), Value::str("mallory"), Value::Int(9000)],
        )
        .expect("execute");
    assert!(!bust.committed);
    println!(
        "liability bust: aborted ({})",
        bust.abort.as_deref().unwrap_or("?")
    );

    // An ad-hoc transaction goes through ModT per submission.
    let adhoc = client
        .ad_hoc("insert(account, {(5, \"carol\", 500)})")
        .expect("ad hoc");
    println!("ad-hoc deposit: committed={}", adhoc.committed);

    // The compensating rule mirrored every committed deposit.
    let audit = client.snapshot("audit").expect("snapshot");
    println!("audit entries: {} (one per committed deposit)", audit.len());
    assert_eq!(audit.len(), 3);

    println!("\n-- metrics dump --");
    print!("{}", client.stats().expect("stats"));
    handle.shutdown();
}
