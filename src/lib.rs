#![warn(missing_docs)]

//! # `txmod-repro` — workspace façade
//!
//! Umbrella package for the reproduction of Grefen, *Combining Theory and
//! Practice in Integrity Control: A Declarative Approach to the
//! Specification of a Transaction Modification Subsystem* (VLDB 1993).
//!
//! This package owns the cross-crate integration tests in `tests/` and the
//! runnable walkthroughs in `examples/` (start with
//! `cargo run --example quickstart`), and re-exports every layer of the
//! pipeline so downstream users can depend on one crate:
//!
//! ```text
//! tm_relational → tm_calculus / tm_algebra → tm_rules → tm_translate
//!               → txmod (the engine) → tm_parallel
//! ```
//!
//! See the repository `README.md` for the architecture map and
//! `docs/grammar.md` for the concrete CL / algebra syntax.

pub use tm_algebra as algebra;
pub use tm_calculus as calculus;
pub use tm_parallel as parallel;
pub use tm_relational as relational;
pub use tm_rules as rules;
pub use tm_translate as translate;
pub use txmod as engine;
