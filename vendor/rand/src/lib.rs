//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of exactly the surface the
//! benchmark workload generators need: [`rngs::StdRng`], [`SeedableRng`], and
//! [`Rng::gen_range`] over integer ranges. The generator is SplitMix64 —
//! statistically fine for workload synthesis, and fully reproducible from a
//! `u64` seed, which is all `tm-bench` requires.
//!
//! If the real `rand` crate ever becomes available, deleting this vendored
//! crate and switching the manifest to a registry dependency is a drop-in
//! change: the call sites compile unmodified against `rand 0.8`.

use std::ops::Range;

/// A source of random 64-bit words. Mirror of `rand_core::RngCore`, reduced
/// to the one method the workspace uses.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
/// Mirror of `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the span sizes benchmarks use
                // (far below 2^64) and irrelevant for workload synthesis.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// User-facing random value generation, mirror of `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a value uniformly sampled from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Rngs constructible from a small seed, mirror of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000_i64), b.gen_range(0..1_000_000_i64));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3..60_i64);
            assert!((-3..60).contains(&v));
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(0..1_usize);
            assert_eq!(v, 0);
        }
    }
}
