//! Offline stand-in for the subset of the `criterion` crate API used by the
//! `tm-bench` benchmark targets.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal harness exposing the same surface the benches were written
//! against: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`Throughput`], [`BatchSize`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery this harness measures each
//! benchmark with a short warm-up followed by `sample_size` timed samples and
//! reports min / median / mean wall-clock time per iteration, plus derived
//! throughput when one was declared. That keeps `cargo bench` fully
//! functional for the shape-level comparisons this reproduction cares about
//! (which variant is cheaper, how checks scale with nodes), and switching the
//! manifest back to the real `criterion 0.5` is drop-in: the bench sources
//! compile unmodified.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark: a function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `"referential/8"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Declared throughput of a benchmark, used to derive rate reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Batching granularity for [`Bencher::iter_batched`]. The stand-in runs one
/// setup per measured iteration regardless of the variant, which is the
/// conservative (never-amortized) interpretation.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Passed to every benchmark closure; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Times `routine`, called repeatedly. Sub-10µs routines are amortized
    /// over enough calls per sample that timer overhead and clock
    /// granularity do not dominate the measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, then calibrate the per-sample iteration count.
        black_box(routine());
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let iters: u32 = if once < Duration::from_micros(10) {
            let target_ns = Duration::from_micros(100).as_nanos();
            (target_ns / once.as_nanos().max(1)).clamp(1, 100_000) as u32
        } else {
            1
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, id: &BenchmarkId, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples", id = id.name);
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let mut line = format!(
        "{group}/{name}: min {min} / median {median} / mean {mean} ({n} samples)",
        name = id.name,
        min = fmt_duration(min),
        median = fmt_duration(median),
        mean = fmt_duration(mean),
        n = sorted.len(),
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / median.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks, mirror of criterion's
/// `BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples, self.throughput);
        self
    }

    /// Runs and reports one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&self.name, &id, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (reporting happens eagerly; this is for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver, mirror of criterion's `Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Hook for CLI configuration; the stand-in accepts and ignores argv
    /// (cargo bench passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirror of criterion's
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` function, mirror of criterion's
/// `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
