//! Self-tests of the proptest stand-in: strategy behavior, the `proptest!`
//! macro, and the failure-reporting path.

use proptest::prelude::*;

#[test]
fn generation_is_deterministic() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let strat = prop::collection::vec((0..100i64, "[a-z]{1,4}"), 1..10);
    let a = strat.generate(&mut TestRng::from_case(7));
    let b = strat.generate(&mut TestRng::from_case(7));
    assert_eq!(a, b);
    let c = strat.generate(&mut TestRng::from_case(8));
    assert_ne!(a, c, "different cases should (almost surely) differ");
}

#[test]
fn regex_lite_patterns() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let mut rng = TestRng::from_case(0);
    for _ in 0..200 {
        let s = "[a-c]{2,5}".generate(&mut rng);
        assert!((2..=5).contains(&s.len()), "bad length: {s:?}");
        assert!(
            s.chars().all(|c| ('a'..='c').contains(&c)),
            "bad char: {s:?}"
        );
        let t = "x[yz]".generate(&mut rng);
        assert!(t == "xy" || t == "xz", "bad literal+class: {t:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_stay_in_bounds(v in -5..5i64, n in 1usize..4) {
        assert!((-5..5).contains(&v));
        assert!((1..4).contains(&n));
    }

    #[test]
    fn oneof_and_option_compose(
        x in prop_oneof![Just(1i64), 10..20i64],
        o in prop::option::of(0..3i64),
    ) {
        assert!(x == 1 || (10..20).contains(&x));
        if let Some(v) = o {
            assert!((0..3).contains(&v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The failure path must re-raise the panic (after printing the case
    /// index and inputs to stderr).
    #[test]
    #[should_panic]
    fn failing_property_panics(v in 0..10i64) {
        assert!(v < 0, "deliberately impossible: {v}");
    }
}
