//! Offline stand-in for the subset of the `proptest` crate API used by this
//! workspace's property tests.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal property-testing engine exposing the surface the tests were
//! written against:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * strategies for integer ranges, `&str` regex-lite patterns, tuples,
//!   [`strategy::Just`] and [`strategy::Union`] (via [`prop_oneof!`]),
//! * [`collection::vec`] and [`option::of`],
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support, and
//!   [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case prints its case index and the `Debug`
//!   form of every generated input before re-raising the panic; inputs are
//!   reproducible because generation is fully deterministic.
//! * **Deterministic seeds.** Case `i` of every test derives its RNG from a
//!   fixed seed and `i`, so failures reproduce across runs and machines.
//! * **Regex strategies** support only character classes, literals and
//!   `{n}` / `{m,n}` repetition — exactly the patterns used in this repo.
//!
//! Switching back to the real `proptest 1.x` is a manifest-only change: the
//! test sources compile unmodified.

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 RNG. Case `i` of a property uses
    /// `TestRng::from_case(i)`, so every run generates the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th test case.
        pub fn from_case(case: u64) -> Self {
            TestRng {
                state: 0x5eed_c0de_0bad_f00d ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an associated type.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a
    /// deterministic function from an RNG state to a value.
    pub trait Strategy: 'static {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `recurse` wraps an inner strategy into a deeper one. `depth`
        /// bounds the nesting; the size/branch hints are accepted for API
        /// parity and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                let deeper = recurse(level).boxed();
                // 1/3 leaf, 2/3 recurse: trees vary in depth up to `depth`.
                level = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
            }
            level
        }

        /// Type-erases this strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
        {
            BoxedStrategy {
                generate: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T> {
        generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                generate: Rc::clone(&self.generate),
            }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + 'static,
        U: 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly among alternative strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// `&str` strategies: regex-lite patterns supporting literals, `[...]`
    /// character classes (with ranges) and `{n}` / `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One element: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in `{pattern}`");
                        for c in lo..=hi {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");

            // Optional {n} or {m,n} repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repetition"),
                        n.trim().parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if max > min {
                min + rng.below((max - min + 1) as u64) as usize
            } else {
                min
            };
            for _ in 0..count {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length range for [`vec()`]; built from `usize`, `a..b` or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` (3 in 4) or `None` (1 in 4), matching real
    /// proptest's bias toward interesting values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Asserts a condition inside a property; panics (failing the case) with the
/// formatted message. No shrinking is attempted.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property; panics (failing the case).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property; panics (failing the case).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among the listed strategies; all arms must generate the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($binding:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            // A tuple of strategies is itself a strategy; building it once
            // here avoids reconstructing (potentially deep prop_recursive)
            // strategy trees on every case.
            let __strategy = ($(($strategy),)+);
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::from_case(__case);
                let __values =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __inputs = format!("{:?}", __values);
                let ($($binding,)+) = __values;
                // Run the body under catch_unwind so a failing case reports
                // its index and generated inputs (there is no shrinking; the
                // inputs ARE the minimal repro, reproducible via the case
                // index).
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest stand-in: `{}` failed at case {}: ({}) = {}",
                        stringify!($name),
                        __case,
                        stringify!($($binding),+),
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
