#!/usr/bin/env python3
"""Schema-driven validator for the committed bench reports.

Each committed ``BENCH_*.json`` is evidence for a specific performance
claim (O(Delta) transactions, prepared-plan amortization, affordable
durability, served throughput). CI runs this validator against the
checkout *before* the bench smokes, so a rerun can never paper over a
bad committed report.

Usage::

    tools/validate_bench.py                 # validate every known report
    tools/validate_bench.py BENCH_foo.json  # validate specific files

A report fails on: missing file, malformed JSON, wrong bench name,
smoke-run data committed as a full run, malformed rows, or a violated
acceptance criterion. Exit status 1 names the first failure.
"""

import json
import sys


class Fail(Exception):
    pass


def load(path, bench_name, regenerate):
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        raise Fail(f"{path} is missing — run `{regenerate}` and commit it")
    except json.JSONDecodeError as e:
        raise Fail(f"{path} is malformed: {e}")
    if data.get("bench") != bench_name:
        raise Fail(f"unexpected bench name in {path}: {data.get('bench')!r}")
    return data


def require_full_run(data, path, regenerate):
    if data.get("smoke", True):
        raise Fail(f"committed {path} is a smoke run — regenerate with a full `{regenerate}`")


def require_fields(row, fields):
    for field, kind in fields.items():
        if not isinstance(row.get(field), kind):
            raise Fail(f"malformed result row ({field}): {row}")


def check_txn_throughput(path):
    regen = "cargo bench -p tm-bench --bench txn_throughput"
    data = load(path, "txn_throughput", regen)
    rows = data.get("results", [])
    modes = {r.get("mode") for r in rows}
    if not {"cow", "clone_snapshot"} <= modes:
        raise Fail(f"report must cover both modes, found {sorted(modes)}")
    for r in rows:
        require_fields(r, {"size": int, "median_ns": int})
    return f"{len(rows)} rows, modes {sorted(modes)}"


def check_prepare_throughput(path):
    regen = "cargo bench -p tm-bench --bench prepare_throughput"
    data = load(path, "prepare_throughput", regen)
    rows = data.get("results", [])
    modes = {r.get("mode") for r in rows}
    paths = {r.get("path") for r in rows}
    specs = {r.get("spec") for r in rows}
    if modes != {"off", "dynamic", "static", "differential"}:
        raise Fail(f"report must cover all four modes, found {sorted(modes)}")
    if paths != {"adhoc", "prepared"}:
        raise Fail(f"report must cover both paths, found {sorted(paths)}")
    if specs != {True, False}:
        raise Fail(f"report must cover spec on and off, found {sorted(map(str, specs))}")
    for r in rows:
        require_fields(r, {"size": int, "median_ns": int})
    require_full_run(data, path, regen)
    static = [r for r in rows if r["mode"] == "static" and r["path"] == "prepared" and r["spec"]]
    if not static or static[0].get("speedup", 0) < 10:
        raise Fail("committed full run must show >= 10x prepared speedup in Static mode")
    if static[0]["size"] < 10_000:
        raise Fail("committed full run must measure at >= 10k tuples")
    # PR 4 (pre-specializer) measured 415,455 tx/s on this shape;
    # specialization must hold at least a 5x improvement.
    if static[0].get("tx_per_sec", 0) < 5 * 415_455:
        raise Fail(
            f"Static spec=on prepared throughput regressed: "
            f"{static[0].get('tx_per_sec')} tx/s < {5 * 415_455}"
        )
    return (
        f"{len(rows)} rows, modes {sorted(modes)}, "
        f"static spec=on prepared {static[0]['tx_per_sec']:.0f} tx/s"
    )


def check_durability(path):
    regen = "cargo bench -p tm-bench --bench durability_overhead"
    data = load(path, "durability_overhead", regen)
    require_full_run(data, path, regen)
    rows = data.get("results", [])
    tput = {r.get("level"): r for r in rows if r.get("section") == "throughput"}
    recovery = [r for r in rows if r.get("section") == "recovery"]
    if set(tput) != {"memory", "none", "buffered", "fsync"}:
        raise Fail(f"report must cover all four levels, found {sorted(tput)}")
    if not recovery:
        raise Fail("report must include recovery-time rows")
    for r in rows:
        if not isinstance(r.get("median_ns", r.get("total_ns")), int):
            raise Fail(f"malformed result row: {r}")
    memory, none = tput["memory"]["median_ns"], tput["none"]["median_ns"]
    buffered, fsync = tput["buffered"]["median_ns"], tput["fsync"]["median_ns"]
    # Durability::None is checkpoint-only — no logging on the commit
    # path, so it must be free (noise margin only).
    if none > 1.5 * memory:
        raise Fail(f"Durability::None is not free: {none}ns vs {memory}ns in-memory")
    # The headline criterion: buffered logging within 2x of None.
    if buffered > 2 * none:
        raise Fail(f"Buffered exceeds 2x None: {buffered}ns vs {none}ns")
    if not fsync > buffered:
        raise Fail("fsync should be the most expensive level — report looks implausible")
    for r in recovery:
        if r["frames"] >= 100 and r["total_ns"] / r["frames"] > 100_000:
            raise Fail(f"recovery slower than 100µs/frame: {r}")
    return (
        f"none {none}ns ({none / memory:.2f}x memory), "
        f"buffered {buffered}ns ({buffered / none:.2f}x none), "
        f"fsync {fsync}ns; {len(recovery)} recovery rows"
    )


def check_service_throughput(path):
    regen = "cargo bench -p tm-bench --bench service_throughput"
    data = load(path, "service_throughput", regen)
    require_full_run(data, path, regen)
    if data.get("mode") != "Static":
        raise Fail(f"served traffic must run in Static mode, found {data.get('mode')!r}")
    if not isinstance(data.get("connections"), int) or data["connections"] < 4:
        raise Fail(f"served traffic needs >= 4 concurrent connections, found {data.get('connections')}")
    scenarios = {s.get("name"): s for s in data.get("scenarios", [])}
    expected = {"order_entry", "bank", "hot_key", "violation_storm", "schema_churn"}
    if not expected <= set(scenarios):
        raise Fail(f"report must cover the scenario corpus, found {sorted(scenarios)}")
    for s in scenarios.values():
        require_fields(
            s,
            {
                "transactions": int,
                "committed": int,
                "aborted": int,
                "tx_per_sec": (int, float),
                "p50_us": int,
                "p99_us": int,
            },
        )
    if scenarios["schema_churn"].get("plan_remodified", 0) <= 0:
        raise Fail("schema_churn must force plan re-modification (plan_remodified == 0)")
    cores = data.get("cores")
    if not isinstance(cores, int) or cores < 1:
        raise Fail(f"report must record the machine's core count, found {cores!r}")
    # The server now runs every tenant connection as a concurrent
    # snapshot session, so its loopback numbers depend on the core
    # count: with >= 4 cores the connections genuinely parallelize and
    # the full gates apply; on fewer cores they interleave on one CPU
    # (the retrying overload clients steal cycles from the server
    # threads), so the honest criteria are a throughput floor and
    # no overload collapse.
    aggregate = data.get("aggregate_tx_per_sec", 0)
    agg_floor = 100_000 if cores >= 4 else 40_000
    if aggregate < agg_floor:
        raise Fail(
            f"served prepared traffic must sustain >= {agg_floor} tx/s aggregate "
            f"on {cores} core(s), got {aggregate:.0f}"
        )
    overload = data.get("overload", {})
    if overload.get("busy_rejections", 0) <= 0:
        raise Fail("overload run must show typed Busy rejections")
    ratio = overload.get("ratio", 0)
    ratio_floor = 0.8 if cores >= 4 else 0.25
    if ratio < ratio_floor:
        raise Fail(
            f"overloaded engine-side throughput fell below {ratio_floor}x uncontended "
            f"on {cores} core(s), ratio {ratio}"
        )
    return (
        f"{len(scenarios)} scenarios, {data['connections']} connections, "
        f"aggregate {aggregate:.0f} tx/s on {cores} core(s), overload ratio {ratio:.2f} "
        f"({overload['busy_rejections']} Busy rejections)"
    )


def check_concurrent_throughput(path):
    regen = "cargo bench -p tm-bench --bench concurrent_throughput"
    data = load(path, "concurrent_throughput", regen)
    require_full_run(data, path, regen)
    if data.get("mode") != "Static":
        raise Fail(f"concurrent traffic must run in Static mode, found {data.get('mode')!r}")
    cores = data.get("cores")
    if not isinstance(cores, int) or cores < 1:
        raise Fail(f"report must record the machine's core count, found {cores!r}")
    rows = data.get("results", [])
    for r in rows:
        require_fields(
            r,
            {
                "workload": str,
                "threads": int,
                "transactions": int,
                "committed": int,
                "aborted": int,
                "conflict_retries": int,
                "tx_per_sec": (int, float),
                "wal_fsyncs": int,
            },
        )
    by = {(r["workload"], r["threads"]): r for r in rows}
    for workload in ("order_entry", "hot_key"):
        for threads in (1, 2, 4):
            if (workload, threads) not in by:
                raise Fail(f"report must sweep {workload} at {threads} thread(s)")
    # Contention must be real: the same-seed hot_key threads race the
    # same tuples, so multi-thread rows must lose (and retry)
    # first-committer-wins validation.
    if by[("hot_key", 4)]["conflict_retries"] <= 0:
        raise Fail("contended hot_key at 4 threads shows no first-committer-wins conflicts")
    # Scaling: with >= 4 cores, 4 sessions must at least double the
    # single-session rate on the conflict-free workload. On fewer cores
    # threads interleave instead of parallelizing, so the honest
    # criterion is no collapse under oversubscription.
    base = by[("order_entry", 1)]["tx_per_sec"]
    four = by[("order_entry", 4)]["tx_per_sec"]
    if cores >= 4:
        if four < 2 * base:
            raise Fail(
                f"4 sessions on {cores} cores must reach >= 2x one session: "
                f"{four:.0f} vs {base:.0f} tx/s"
            )
        scaling = f"4-thread speedup {four / base:.2f}x on {cores} cores"
    else:
        if four < 0.4 * base:
            raise Fail(
                f"4 sessions on {cores} core(s) collapsed: {four:.0f} vs {base:.0f} tx/s "
                f"(floor 0.4x)"
            )
        scaling = f"no-collapse {four / base:.2f}x on {cores} core(s) (speedup needs >= 4 cores)"
    # Group commit must amortize fsyncs well below one per commit.
    fsync_rows = [r for r in rows if r["workload"] == "order_entry_fsync"]
    if not fsync_rows:
        raise Fail("report must include the group-commit (order_entry_fsync) rows")
    gc = data.get("group_commit", 0)
    if not isinstance(gc, int) or gc < 2:
        raise Fail(f"group_commit must batch >= 2 commits per fsync, found {gc!r}")
    for r in fsync_rows:
        if r["wal_fsyncs"] <= 0:
            raise Fail(f"durable workload logged no fsyncs: {r}")
        if r["wal_fsyncs"] * 2 > r["committed"]:
            raise Fail(
                f"group commit failed to amortize: {r['wal_fsyncs']} fsyncs "
                f"for {r['committed']} commits"
            )
    hot4 = by[("hot_key", 4)]
    return (
        f"{len(rows)} rows, {scaling}; hot_key@4 {hot4['conflict_retries']} conflict "
        f"retries; group commit {fsync_rows[-1]['committed'] // fsync_rows[-1]['wal_fsyncs']} "
        f"commits/fsync"
    )


REPORTS = {
    "BENCH_txn_throughput.json": check_txn_throughput,
    "BENCH_prepare_throughput.json": check_prepare_throughput,
    "BENCH_durability.json": check_durability,
    "BENCH_service_throughput.json": check_service_throughput,
    "BENCH_concurrent_throughput.json": check_concurrent_throughput,
}


def main(argv):
    paths = argv[1:] or sorted(REPORTS)
    for path in paths:
        check = REPORTS.get(path)
        if check is None:
            sys.exit(f"no validator registered for {path} (known: {', '.join(sorted(REPORTS))})")
        try:
            summary = check(path)
        except Fail as e:
            sys.exit(f"{path}: {e}")
        print(f"ok: {path}: {summary}")


if __name__ == "__main__":
    main(sys.argv)
